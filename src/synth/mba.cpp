#include <cmath>
#include <span>

#include "nn/rng.h"
#include "synth/synth.h"

namespace dg::synth {

namespace {
// Six-hour bins: night, morning, afternoon, evening.
constexpr double kDiurnal[4] = {0.55, 0.85, 1.10, 1.50};

// Mean daily traffic (GB/day) per connection technology. Cable > DSL is the
// relationship Table 3 / Fig 9 measure.
constexpr double kDailyGb[5] = {0.8, 2.6, 0.35, 2.2, 1.3};
// Baseline UDP ping loss rate per technology (satellite much lossier).
constexpr double kBaseLoss[5] = {0.004, 0.001, 0.030, 0.003, 0.006};

// Per-technology ISP plausibility (14 ISPs as in Fig 18). Row: technology.
constexpr double kIspWeights[5][14] = {
    // Charter Verizon Frontier VerizonDSL Hawaiian Cox Mediacom Hughes
    // Windstream ViaSat CinBell Comcast AT&T CenturyLink
    {0.02, 0.10, 0.18, 0.15, 0.04, 0.02, 0.02, 0.0, 0.16, 0.0, 0.05, 0.02, 0.12, 0.12},  // DSL
    {0.02, 0.40, 0.08, 0.05, 0.06, 0.03, 0.02, 0.0, 0.04, 0.0, 0.06, 0.04, 0.15, 0.05},  // Fiber
    {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.55, 0.0, 0.45, 0.0, 0.0, 0.0, 0.0},            // Satellite
    {0.22, 0.02, 0.04, 0.0, 0.03, 0.14, 0.10, 0.0, 0.02, 0.0, 0.03, 0.34, 0.04, 0.02},   // Cable
    {0.05, 0.08, 0.06, 0.04, 0.04, 0.06, 0.05, 0.0, 0.06, 0.0, 0.06, 0.10, 0.28, 0.12},  // IPBB
};
}  // namespace

SynthData make_mba(const MbaOptions& opt) {
  SynthData out;
  out.schema.name = "mba";
  out.schema.max_timesteps = opt.t;
  out.schema.attributes = {
      data::categorical_field("technology",
                              {"DSL", "Fiber", "Satellite", "Cable", "IPBB"}),
      data::categorical_field(
          "isp", {"Charter", "Verizon", "Frontier", "Verizon DSL",
                  "Hawaiian Telcom", "Cox", "Mediacom", "Hughes", "Windstream",
                  "Wildblue/ViaSat", "Cincinnati Bell", "Comcast", "AT&T",
                  "CenturyLink"}),
      data::categorical_field("state", {"PA", "CA", "TX", "NY", "FL", "WA",
                                        "OH", "IL", "GA", "CO"}),
  };
  // Traffic per 6h bin capped at 3 GB; loss rate is a probability.
  out.schema.features = {
      data::continuous_field("ping_loss_rate", 0.0f, 1.0f),
      data::continuous_field("traffic_bytes", 0.0f, 3.0e9f),
  };

  nn::Rng rng(opt.seed);
  const double tech_w[5] = {0.30, 0.15, 0.08, 0.35, 0.12};

  out.data.reserve(opt.n);
  for (int i = 0; i < opt.n; ++i) {
    data::Object o;
    const int tech = rng.categorical(std::span<const double>(tech_w, 5));
    const int isp = rng.categorical(std::span<const double>(kIspWeights[tech], 14));
    const int state = rng.uniform_int(10);
    o.attributes = {static_cast<float>(tech), static_cast<float>(isp),
                    static_cast<float>(state)};

    // Heavy-tailed per-home usage multiplier.
    const double home_mult = std::exp(rng.normal(0.0, 0.6));
    const double gb_per_bin = kDailyGb[tech] * home_mult / 4.0;
    const double loss_base = kBaseLoss[tech] * std::exp(rng.normal(0.0, 0.4));

    o.features.reserve(opt.t);
    for (int t = 0; t < opt.t; ++t) {
      const int bin_of_day = t % 4;
      const int day = t / 4;
      const bool weekend = (day % 7) >= 5;
      double bytes = gb_per_bin * kDiurnal[bin_of_day] *
                     (weekend ? 1.35 : 1.0) *
                     std::max(0.05, 1.0 + rng.normal(0.0, 0.30)) * 1e9;
      bytes = std::min(bytes, static_cast<double>(out.schema.features[1].hi));

      // Loss: small baseline plus occasional congestion bursts that are more
      // likely when the link is busy.
      double loss = loss_base * std::max(0.0, 1.0 + rng.normal(0.0, 0.5));
      if (rng.bernoulli(0.02 + 0.02 * (bin_of_day == 3))) {
        loss += rng.uniform(0.05, 0.25);
      }
      loss = std::min(loss, 1.0);

      o.features.push_back(
          {static_cast<float>(loss), static_cast<float>(bytes)});
    }
    out.data.push_back(std::move(o));
  }
  return out;
}

}  // namespace dg::synth
