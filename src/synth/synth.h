// Synthetic stand-ins for the paper's three datasets (Tables 5-7). The real
// corpora (Kaggle WWT dump, FCC MBA raw data, Google cluster traces) are not
// available offline; these generators reproduce exactly the structural
// properties the paper's evaluation measures — see DESIGN.md's substitution
// table.
#pragma once

#include <cstdint>

#include "data/types.h"

namespace dg::synth {

struct SynthData {
  data::Schema schema;
  data::Dataset data;
};

/// Wikipedia Web Traffic stand-in: one continuous feature (daily page
/// views) with a weekly and a long-term ("annual") periodicity, log-uniform
/// per-page scale spanning ~3 decades, and domain/access/agent attributes.
struct WwtOptions {
  int n = 1000;
  int t = 280;              ///< series length (all series equal length)
  int weekly_period = 7;
  int annual_period = 140;  ///< scaled-down stand-in for the 365-day cycle
  /// Std-dev of the per-step AR(1) noise. Lower values make each page's
  /// identity (scale/amplitudes/phase) dominate — useful for the
  /// membership-inference experiments where unlearnable noise would
  /// otherwise drown the overfitting signal.
  double ar_noise = 0.05;
  uint64_t seed = 1;
};
SynthData make_wwt(const WwtOptions& opt = {});

/// FCC Measuring Broadband America stand-in: ping-loss + traffic-bytes
/// features over 56 six-hour bins; technology/ISP/state attributes; cable
/// homes systematically heavier than DSL (drives Table 3 / Fig 9).
struct MbaOptions {
  int n = 600;
  int t = 56;
  uint64_t seed = 2;
};
SynthData make_mba(const MbaOptions& opt = {});

/// Google Cluster Usage Traces stand-in: variable-length (<= t_max)
/// cpu/memory/disk usage with a bimodal duration distribution and an
/// end-event-type attribute whose value is strongly correlated with the
/// temporal shape (FAIL tasks show rising memory, etc.).
struct GcutOptions {
  int n = 2000;
  int t_max = 50;
  uint64_t seed = 3;
};
SynthData make_gcut(const GcutOptions& opt = {});

// Category index constants for readability in tests/benches.
namespace gcut_event {
inline constexpr int kEvict = 0;
inline constexpr int kFail = 1;
inline constexpr int kFinish = 2;
inline constexpr int kKill = 3;
}  // namespace gcut_event

/// Network flow traces — the "progressively harder class of time series"
/// the paper names as future work (§6). Per-flow records of packets/bytes/
/// mean-RTT per epoch with protocol + application attributes; flow shapes
/// (bulk transfer vs streaming vs chatty request/response) depend strongly
/// on the application, and sizes are heavy-tailed.
struct FlowOptions {
  int n = 1500;
  int t_max = 40;
  uint64_t seed = 4;
};
SynthData make_flows(const FlowOptions& opt = {});

namespace flow_app {
inline constexpr int kWeb = 0;
inline constexpr int kVideo = 1;
inline constexpr int kDns = 2;
inline constexpr int kBulk = 3;
}  // namespace flow_app

namespace mba_tech {
inline constexpr int kDsl = 0;
inline constexpr int kFiber = 1;
inline constexpr int kSatellite = 2;
inline constexpr int kCable = 3;
inline constexpr int kIpbb = 4;
}  // namespace mba_tech

}  // namespace dg::synth
