// Package preflight: validates a `.dgpkg` end to end — header, schema,
// config, schema<->config consistency (via the static analyzer), and the
// weight section's shape census against the expected parameter layout —
// WITHOUT constructing a model or reading a single float of payload. This
// is what GenerationService runs before every load/hot-reload (refusing the
// swap on failure) and what `dgcli lint --package` reports.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "analysis/diag.h"
#include "analysis/model.h"
#include "analysis/tape.h"
#include "core/doppelganger.h"
#include "data/types.h"
#include "nn/serialize.h"

namespace dg::core {

struct PackagePreflight {
  /// No error-severity diagnostics: the package is safe to load.
  bool ok = false;
  /// The magic/schema/config sections parsed (the weight census may still
  /// have failed). When false, `schema`/`config` are default-constructed.
  bool header_ok = false;
  std::vector<analysis::Diagnostic> diagnostics;
  data::Schema schema;
  DoppelGangerConfig config;
  /// Shape of every matrix in the weight section (header-only read).
  std::vector<nn::MatrixShape> weight_matrices;
  /// Generation-tape lowering census (analysis/tape.h): instruction and
  /// fusion-group counts, arena peak, and whether the verifier passed. Only
  /// populated when the header + analysis were clean enough to lower.
  analysis::TapeSummary tape;
};

/// Never throws on bad input — all findings come back as diagnostics.
PackagePreflight preflight_package(
    std::istream& is,
    const analysis::OpRegistry& registry = analysis::OpRegistry::builtin());

PackagePreflight preflight_package_file(
    const std::string& path,
    const analysis::OpRegistry& registry = analysis::OpRegistry::builtin());

/// Analyze a schema + config pair directly (no weight section) — the
/// `dgcli lint --schema/--config` path.
analysis::ModelAnalysis preflight_config(
    const data::Schema& schema, const DoppelGangerConfig& cfg,
    const analysis::OpRegistry& registry = analysis::OpRegistry::builtin());

/// Renders diagnostics into the multi-line message used when a preflight
/// failure must surface as an exception (fit(), service construction).
std::string render_diagnostics(
    std::span<const analysis::Diagnostic> diagnostics);

}  // namespace dg::core
