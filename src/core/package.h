// A "model package" bundles everything a data consumer needs to regenerate
// data from a released DoppelGANger model (Fig 2): the schema, the exact
// architecture configuration, and the trained parameters theta. This is
// what the dgcli tool writes and reads.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "core/doppelganger.h"

namespace dg::core {

void save_package(std::ostream& os, const DoppelGanger& model);
std::unique_ptr<DoppelGanger> load_package(std::istream& is);

void save_package_file(const std::string& path, const DoppelGanger& model);
std::unique_ptr<DoppelGanger> load_package_file(const std::string& path);

/// Config (de)serialization used by the package format (text, line-based).
void save_config(std::ostream& os, const DoppelGangerConfig& cfg);
DoppelGangerConfig load_config(std::istream& is);

}  // namespace dg::core
