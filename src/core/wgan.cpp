#include "core/wgan.h"

#include <stdexcept>

namespace dg::core {

nn::Var gradient_penalty(const CriticFn& critic, const nn::Matrix& real,
                         const nn::Matrix& fake, nn::Rng& rng) {
  if (!real.same_shape(fake)) {
    throw std::invalid_argument("gradient_penalty: real/fake shape mismatch");
  }
  // Per-sample interpolation coefficient t ~ Unif[0,1].
  nn::Matrix xhat = fake;
  for (int i = 0; i < xhat.rows(); ++i) {
    const float t = static_cast<float>(rng.uniform());
    for (int j = 0; j < xhat.cols(); ++j) {
      xhat.at(i, j) = t * real.at(i, j) + (1.0f - t) * fake.at(i, j);
    }
  }
  // xhat is a fresh leaf: the penalty constrains the critic, not the
  // generator, so no gradient needs to flow into the interpolation inputs.
  nn::Var x(std::move(xhat), /*requires_grad=*/true);
  nn::Var out = nn::sum(critic(x));
  auto grads = nn::autograd::grad(out, std::vector<nn::Var>{x},
                                  /*create_graph=*/true);
  if (!grads[0].defined()) {
    throw std::logic_error("gradient_penalty: critic ignored its input");
  }
  nn::Var norms = nn::row_l2_norm(grads[0]);
  return nn::mean(nn::square(nn::add_scalar(norms, -1.0f)));
}

nn::Var critic_loss(const CriticFn& critic, const nn::Matrix& real,
                    const nn::Matrix& fake, float gp_weight, nn::Rng& rng,
                    float* gp_out) {
  nn::Var loss = nn::sub(nn::mean(critic(nn::constant(fake))),
                         nn::mean(critic(nn::constant(real))));
  if (gp_out) *gp_out = 0.0f;
  if (gp_weight > 0.0f) {
    nn::Var penalty = gradient_penalty(critic, real, fake, rng);
    if (gp_out) *gp_out = penalty.value().at(0, 0);
    loss = nn::add(loss, nn::mul_scalar(penalty, gp_weight));
  }
  return loss;
}

nn::Var generator_loss(const CriticFn& critic, const nn::Var& fake) {
  return nn::neg(nn::mean(critic(fake)));
}

namespace {
nn::Var log_sigmoid_mean(const nn::Var& logits, bool of_one_minus) {
  nn::Var p = nn::sigmoid(logits);
  if (of_one_minus) p = nn::add_scalar(nn::neg(p), 1.0f);
  return nn::mean(nn::log_(nn::add_scalar(p, 1e-7f)));
}
}  // namespace

nn::Var standard_critic_loss(const CriticFn& critic, const nn::Matrix& real,
                             const nn::Matrix& fake) {
  // -E[log D(real)] - E[log(1 - D(fake))]
  nn::Var loss_real = log_sigmoid_mean(critic(nn::constant(real)), false);
  nn::Var loss_fake = log_sigmoid_mean(critic(nn::constant(fake)), true);
  return nn::neg(nn::add(loss_real, loss_fake));
}

nn::Var standard_generator_loss(const CriticFn& critic, const nn::Var& fake) {
  // Non-saturating: -E[log D(fake)]
  return nn::neg(log_sigmoid_mean(critic(fake), false));
}

}  // namespace dg::core
