#include "core/output_blocks.h"

#include <stdexcept>

namespace dg::core {

nn::Var apply_blocks(const nn::Var& x, std::span<const OutputBlock> blocks) {
  if (x.cols() != total_width(blocks)) {
    throw std::invalid_argument("apply_blocks: width mismatch");
  }
  std::vector<nn::Var> parts;
  parts.reserve(blocks.size());
  int col = 0;
  for (const OutputBlock& b : blocks) {
    parts.push_back(
        nn::activate(nn::slice_cols(x, col, col + b.width), b.activation));
    col += b.width;
  }
  return nn::concat_cols(parts);
}

int total_width(std::span<const OutputBlock> blocks) {
  int w = 0;
  for (const OutputBlock& b : blocks) w += b.width;
  return w;
}

std::vector<OutputBlock> attribute_blocks(const data::Schema& schema) {
  std::vector<OutputBlock> blocks;
  for (const data::FieldSpec& a : schema.attributes) {
    blocks.push_back({a.width(), a.type == data::FieldType::Categorical
                                     ? nn::Activation::Softmax
                                     : nn::Activation::Sigmoid});
  }
  return blocks;
}

std::vector<OutputBlock> minmax_blocks(const data::Schema& schema) {
  std::vector<OutputBlock> blocks;
  for (const data::FieldSpec& f : schema.features) {
    if (f.type == data::FieldType::Continuous) {
      blocks.push_back({2, nn::Activation::Sigmoid});
    }
  }
  return blocks;
}

std::vector<OutputBlock> record_blocks(const data::Schema& schema,
                                       bool autonorm) {
  std::vector<OutputBlock> blocks;
  for (const data::FieldSpec& f : schema.features) {
    if (f.type == data::FieldType::Categorical) {
      blocks.push_back({f.width(), nn::Activation::Softmax});
    } else {
      blocks.push_back(
          {1, autonorm ? nn::Activation::Tanh : nn::Activation::Sigmoid});
    }
  }
  blocks.push_back({2, nn::Activation::Softmax});  // generation flags
  return blocks;
}

std::vector<OutputBlock> repeat_blocks(std::span<const OutputBlock> blocks,
                                       int count) {
  std::vector<OutputBlock> out;
  out.reserve(blocks.size() * static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.insert(out.end(), blocks.begin(), blocks.end());
  }
  return out;
}

}  // namespace dg::core
