#include "core/package.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "data/io.h"

namespace dg::core {

namespace {
constexpr const char* kConfigMagic = "doppelganger-config v1";
constexpr const char* kPackageMagic = "doppelganger-package v1";
constexpr const char* kSectionEnd = "---";
}  // namespace

void save_config(std::ostream& os, const DoppelGangerConfig& cfg) {
  os << kConfigMagic << '\n';
  os << "attr_noise_dim " << cfg.attr_noise_dim << '\n';
  os << "minmax_noise_dim " << cfg.minmax_noise_dim << '\n';
  os << "feat_noise_dim " << cfg.feat_noise_dim << '\n';
  os << "attr_hidden " << cfg.attr_hidden << '\n';
  os << "attr_layers " << cfg.attr_layers << '\n';
  os << "minmax_hidden " << cfg.minmax_hidden << '\n';
  os << "minmax_layers " << cfg.minmax_layers << '\n';
  os << "lstm_units " << cfg.lstm_units << '\n';
  os << "head_hidden " << cfg.head_hidden << '\n';
  os << "sample_len " << cfg.sample_len << '\n';
  os << "use_minmax_generator " << cfg.use_minmax_generator << '\n';
  os << "use_aux_discriminator " << cfg.use_aux_discriminator << '\n';
  os << "aux_alpha " << cfg.aux_alpha << '\n';
  os << "disc_hidden " << cfg.disc_hidden << '\n';
  os << "disc_layers " << cfg.disc_layers << '\n';
  os << "gp_weight " << cfg.gp_weight << '\n';
  os << "d_steps " << cfg.d_steps << '\n';
  os << "lr " << cfg.lr << '\n';
  os << "batch " << cfg.batch << '\n';
  os << "iterations " << cfg.iterations << '\n';
  os << "seed " << cfg.seed << '\n';
  os << "loss " << (cfg.loss == GanLoss::Standard ? 1 : 0) << '\n';
  os << kSectionEnd << '\n';
}

DoppelGangerConfig load_config(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kConfigMagic) {
    throw std::runtime_error("package: not a config section");
  }
  DoppelGangerConfig cfg;
  while (std::getline(is, line) && line != kSectionEnd) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "attr_noise_dim") ls >> cfg.attr_noise_dim;
    else if (key == "minmax_noise_dim") ls >> cfg.minmax_noise_dim;
    else if (key == "feat_noise_dim") ls >> cfg.feat_noise_dim;
    else if (key == "attr_hidden") ls >> cfg.attr_hidden;
    else if (key == "attr_layers") ls >> cfg.attr_layers;
    else if (key == "minmax_hidden") ls >> cfg.minmax_hidden;
    else if (key == "minmax_layers") ls >> cfg.minmax_layers;
    else if (key == "lstm_units") ls >> cfg.lstm_units;
    else if (key == "head_hidden") ls >> cfg.head_hidden;
    else if (key == "sample_len") ls >> cfg.sample_len;
    else if (key == "use_minmax_generator") ls >> cfg.use_minmax_generator;
    else if (key == "use_aux_discriminator") ls >> cfg.use_aux_discriminator;
    else if (key == "aux_alpha") ls >> cfg.aux_alpha;
    else if (key == "disc_hidden") ls >> cfg.disc_hidden;
    else if (key == "disc_layers") ls >> cfg.disc_layers;
    else if (key == "gp_weight") ls >> cfg.gp_weight;
    else if (key == "d_steps") ls >> cfg.d_steps;
    else if (key == "lr") ls >> cfg.lr;
    else if (key == "batch") ls >> cfg.batch;
    else if (key == "iterations") ls >> cfg.iterations;
    else if (key == "seed") ls >> cfg.seed;
    else if (key == "loss") {
      int v = 0;
      ls >> v;
      cfg.loss = v ? GanLoss::Standard : GanLoss::WassersteinGp;
    }
    else throw std::runtime_error("package: unknown config key '" + key + "'");
    if (!ls) throw std::runtime_error("package: bad value for '" + key + "'");
  }
  return cfg;
}

void save_package(std::ostream& os, const DoppelGanger& model) {
  os << kPackageMagic << '\n';
  // Schema section is terminated by a blank line (load_schema reads to EOF,
  // so we buffer it and write its length first).
  std::ostringstream schema_ss;
  data::save_schema(schema_ss, model.schema());
  const std::string schema_text = schema_ss.str();
  os << "schema_bytes " << schema_text.size() << '\n' << schema_text;
  save_config(os, model.config());
  model.save(os);
  if (!os) throw std::runtime_error("package: write failed");
}

std::unique_ptr<DoppelGanger> load_package(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kPackageMagic) {
    throw std::runtime_error("package: bad magic");
  }
  std::size_t schema_bytes = 0;
  {
    std::getline(is, line);
    std::istringstream ls(line);
    std::string key;
    ls >> key >> schema_bytes;
    if (key != "schema_bytes" || schema_bytes == 0) {
      throw std::runtime_error("package: missing schema section");
    }
  }
  std::string schema_text(schema_bytes, '\0');
  is.read(schema_text.data(), static_cast<std::streamsize>(schema_bytes));
  if (!is) throw std::runtime_error("package: truncated schema");
  std::istringstream schema_ss(schema_text);
  data::Schema schema = data::load_schema(schema_ss);

  DoppelGangerConfig cfg = load_config(is);
  auto model = std::make_unique<DoppelGanger>(std::move(schema), cfg);
  model->load(is);
  return model;
}

void save_package_file(const std::string& path, const DoppelGanger& model) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("package: cannot open " + path);
  save_package(os, model);
}

std::unique_ptr<DoppelGanger> load_package_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("package: cannot open " + path);
  return load_package(is);
}

}  // namespace core
