#include "core/doppelganger.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "analysis/model.h"
#include "analysis/train_step.h"
#include "core/preflight.h"
#include "core/wgan.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dg::core {

namespace {
using nn::Matrix;
using nn::Var;

Matrix take_rows(const Matrix& x, std::span<const int> idx) {
  Matrix out(static_cast<int>(idx.size()), x.cols());
  for (size_t i = 0; i < idx.size(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      out.at(static_cast<int>(i), j) = x.at(idx[i], j);
    }
  }
  return out;
}

Matrix hcat(const Matrix& a, const Matrix& b) {
  const Matrix* parts[] = {&a, &b};
  return nn::concat_cols(parts);
}

Matrix hcat(const Matrix& a, const Matrix& b, const Matrix& c) {
  const Matrix* parts[] = {&a, &b, &c};
  return nn::concat_cols(parts);
}

/// Global L2 norm over every defined gradient in `params` (post-backward,
/// pre-step) — the WGAN-health series the paper's Fig 13-style debugging
/// leans on.
float grad_global_norm(const std::vector<Var>& params) {
  double s = 0.0;
  for (const Var& p : params) {
    Var g = p.grad();
    if (!g.defined()) continue;
    for (float v : g.value().flat()) s += static_cast<double>(v) * v;
  }
  return static_cast<float>(std::sqrt(s));
}

/// Collapse sentinel: how much of the output range the fake batch spans.
/// Mode collapse shows up as per-column (max - min) shrinking toward zero
/// while losses still look plausible.
struct FeatureSpread {
  float mean_spread = 0.0f;
  float min = 0.0f;
  float max = 0.0f;
};

FeatureSpread feature_spread(const Matrix& feats) {
  FeatureSpread out;
  const int n = feats.rows(), d = feats.cols();
  if (n == 0 || d == 0) return out;
  double spread_sum = 0.0;
  float gmin = feats.at(0, 0), gmax = feats.at(0, 0);
  for (int j = 0; j < d; ++j) {
    float lo = feats.at(0, j), hi = lo;
    for (int i = 1; i < n; ++i) {
      const float v = feats.at(i, j);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    spread_sum += static_cast<double>(hi) - lo;
    gmin = std::min(gmin, lo);
    gmax = std::max(gmax, hi);
  }
  out.mean_spread = static_cast<float>(spread_sum / d);
  out.min = gmin;
  out.max = gmax;
  return out;
}
}  // namespace

DoppelGanger::DoppelGanger(data::Schema schema, DoppelGangerConfig cfg)
    : cfg_(cfg),
      codec_(std::move(schema), cfg.use_minmax_generator),
      rng_(cfg.seed) {
  const data::Schema& s = codec_.schema();
  minmax_enabled_ = cfg_.use_minmax_generator && codec_.minmax_dim() > 0;

  attr_blocks_ = attribute_blocks(s);
  minmax_blocks_ = minmax_blocks(s);
  const auto rec = record_blocks(s, minmax_enabled_);
  record_width_ = total_width(rec);
  if (record_width_ != codec_.record_width()) {
    throw std::logic_error("DoppelGanger: record width disagreement");
  }
  if (cfg_.sample_len <= 0 || cfg_.sample_len > s.max_timesteps) {
    throw std::invalid_argument("DoppelGanger: bad sample_len (S)");
  }
  steps_per_series_ =
      (s.max_timesteps + cfg_.sample_len - 1) / cfg_.sample_len;
  step_blocks_ = repeat_blocks(rec, cfg_.sample_len);

  nn::Rng init = rng_.fork();
  const int attr_w = codec_.attribute_dim();
  const int mm_w = minmax_enabled_ ? codec_.minmax_dim() : 0;

  attr_gen_ = nn::Mlp(cfg_.attr_noise_dim, attr_w, cfg_.attr_hidden,
                      cfg_.attr_layers, init);
  if (minmax_enabled_) {
    minmax_gen_ = nn::Mlp(attr_w + cfg_.minmax_noise_dim, mm_w,
                          cfg_.minmax_hidden, cfg_.minmax_layers, init);
  }
  lstm_ = nn::LstmCell(attr_w + mm_w + cfg_.feat_noise_dim, cfg_.lstm_units, init);
  head_ = nn::Mlp(cfg_.lstm_units, cfg_.sample_len * record_width_,
                  cfg_.head_hidden, 1, init);

  const int full_w = attr_w + mm_w + codec_.feature_row_dim();
  disc_ = nn::Mlp(full_w, 1, cfg_.disc_hidden, cfg_.disc_layers, init);
  if (cfg_.use_aux_discriminator) {
    aux_disc_ = nn::Mlp(attr_w + mm_w, 1, cfg_.disc_hidden, cfg_.disc_layers, init);
  }

  g_opt_ = nn::Adam(generator_parameters(), {.lr = cfg_.lr});
  d_opt_ = nn::Adam(disc_.parameters(), {.lr = cfg_.lr});
  if (cfg_.use_aux_discriminator) {
    aux_opt_ = nn::Adam(aux_disc_.parameters(), {.lr = cfg_.lr});
  }
}

std::vector<nn::Var> DoppelGanger::generator_parameters() const {
  std::vector<Var> params = attr_gen_.parameters();
  if (minmax_enabled_) {
    auto p = minmax_gen_.parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  auto pl = lstm_.parameters();
  params.insert(params.end(), pl.begin(), pl.end());
  auto ph = head_.parameters();
  params.insert(params.end(), ph.begin(), ph.end());
  return params;
}

Var DoppelGanger::noise(int n, int dim) {
  return nn::constant(rng_.normal_matrix(n, dim));
}

DoppelGanger::GenOut DoppelGanger::forward(int n) {
  GenOut out;
  out.attributes =
      apply_blocks(attr_gen_.forward(noise(n, cfg_.attr_noise_dim)), attr_blocks_);
  if (minmax_enabled_) {
    std::vector<Var> in{out.attributes, noise(n, cfg_.minmax_noise_dim)};
    out.minmax =
        apply_blocks(minmax_gen_.forward(nn::concat_cols(in)), minmax_blocks_);
  } else {
    out.minmax = nn::constant(Matrix(n, 0));
  }

  std::vector<Var> cond_parts{out.attributes, out.minmax};
  const Var cond = nn::concat_cols(cond_parts);

  nn::LstmState st = lstm_.initial_state(n);
  std::vector<Var> records;
  records.reserve(static_cast<size_t>(codec_.tmax()));
  // Differentiable continuation mask: record t is scaled by the product of
  // all previous records' continue-flag probabilities, so generated series
  // fade to zero after the end flag fires — matching real zero-padding.
  Var mask = nn::ones(n, 1);
  for (int step = 0; step < steps_per_series_; ++step) {
    std::vector<Var> in{cond, noise(n, cfg_.feat_noise_dim)};
    st = lstm_.step(nn::concat_cols(in), st);
    Var block = apply_blocks(head_.forward(st.h), step_blocks_);
    for (int s = 0; s < cfg_.sample_len; ++s) {
      if (static_cast<int>(records.size()) >= codec_.tmax()) break;
      Var rec = nn::mul_colvec(
          nn::slice_cols(block, s * record_width_, (s + 1) * record_width_),
          mask);
      // The masked continue flag *is* the next mask (mask * p_continue).
      mask = nn::slice_cols(rec, record_width_ - 2, record_width_ - 1);
      records.push_back(std::move(rec));
    }
  }
  out.features = nn::concat_cols(records);
  return out;
}

GenContext DoppelGanger::sample_context(int n, nn::Rng& rng) const {
  return sample_context_fixed(n, {}, rng);
}

GenContext DoppelGanger::sample_context_fixed(
    int n, const std::vector<std::pair<int, float>>& fixed,
    nn::Rng& rng) const {
  nn::NoGradGuard guard;
  GenContext ctx;
  ctx.attributes =
      apply_blocks(attr_gen_.forward(
                       nn::constant(rng.normal_matrix(n, cfg_.attr_noise_dim))),
                   attr_blocks_)
          .value();

  // Fixed-attribute requests clamp fields *after* sampling: the generated
  // row keeps the model's joint structure for the free fields while the
  // fixed ones are overwritten in encoded space (one-hot / scaled [0,1])
  // before conditioning the min/max generator and the LSTM.
  const data::Schema& s = codec_.schema();
  for (const auto& [field, raw] : fixed) {
    if (field < 0 || field >= s.num_attributes()) {
      throw std::invalid_argument("sample_context_fixed: bad attribute index");
    }
    int col = 0;
    for (int j = 0; j < field; ++j) col += s.attributes[static_cast<size_t>(j)].width();
    const data::FieldSpec& spec = s.attributes[static_cast<size_t>(field)];
    if (spec.type == data::FieldType::Categorical) {
      const int c = static_cast<int>(raw);
      if (c < 0 || c >= spec.n_categories) {
        throw std::invalid_argument("sample_context_fixed: category range");
      }
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < spec.n_categories; ++j) {
          ctx.attributes.at(i, col + j) = (j == c) ? 1.0f : 0.0f;
        }
      }
    } else {
      const float v01 = data::scale01(spec, raw);
      for (int i = 0; i < n; ++i) ctx.attributes.at(i, col) = v01;
    }
  }

  if (minmax_enabled_) {
    std::vector<Var> in{nn::constant(ctx.attributes),
                        nn::constant(rng.normal_matrix(n, cfg_.minmax_noise_dim))};
    ctx.minmax =
        apply_blocks(minmax_gen_.forward(nn::concat_cols(in)), minmax_blocks_)
            .value();
  } else {
    ctx.minmax = Matrix(n, 0);
  }
  ctx.cond = hcat(ctx.attributes, ctx.minmax);
  return ctx;
}

GenState DoppelGanger::initial_gen_state(int n) const {
  GenState st;
  st.h = Matrix(n, cfg_.lstm_units, 0.0f);
  st.c = Matrix(n, cfg_.lstm_units, 0.0f);
  st.mask = Matrix(n, 1, 1.0f);
  st.step = 0;
  return st;
}

nn::Matrix DoppelGanger::generation_step(const GenContext& ctx,
                                         const nn::Matrix& noise,
                                         GenState& state) const {
  const int n = ctx.cond.rows();
  if (noise.rows() != n || noise.cols() != cfg_.feat_noise_dim) {
    throw std::invalid_argument("generation_step: noise shape mismatch");
  }
  nn::NoGradGuard guard;
  std::vector<Var> in{nn::constant(ctx.cond), nn::constant(noise)};
  nn::LstmState st = lstm_.step(
      nn::concat_cols(in),
      {nn::constant(state.h), nn::constant(state.c)});
  Var block = apply_blocks(head_.forward(st.h), step_blocks_);
  // Continuation-mask each of the S records exactly like the training-time
  // unroll: record s is scaled by the running mask, and the masked continue
  // flag becomes the mask for record s+1.
  Var mask = nn::constant(state.mask);
  std::vector<Var> records;
  records.reserve(static_cast<size_t>(cfg_.sample_len));
  for (int s = 0; s < cfg_.sample_len; ++s) {
    Var rec = nn::mul_colvec(
        nn::slice_cols(block, s * record_width_, (s + 1) * record_width_),
        mask);
    mask = nn::slice_cols(rec, record_width_ - 2, record_width_ - 1);
    records.push_back(std::move(rec));
  }
  state.h = st.h.value();
  state.c = st.c.value();
  state.mask = mask.value();
  ++state.step;
  return nn::concat_cols(records).value();
}

data::Dataset DoppelGanger::generate(int n) {
  data::Dataset out;
  out.reserve(static_cast<size_t>(n));
  int remaining = n;
  while (remaining > 0) {
    const int b = std::min(remaining, cfg_.batch);
    GenContext ctx = sample_context(b, rng_);
    GenState st = initial_gen_state(b);
    Matrix feats(b, codec_.feature_row_dim());
    int emitted = 0;  // records written so far (per lane, all lanes aligned)
    while (emitted < codec_.tmax()) {
      const Matrix recs =
          generation_step(ctx, rng_.normal_matrix(b, cfg_.feat_noise_dim), st);
      const int take =
          std::min(cfg_.sample_len, codec_.tmax() - emitted) * record_width_;
      for (int i = 0; i < b; ++i) {
        for (int j = 0; j < take; ++j) {
          feats.at(i, emitted * record_width_ + j) = recs.at(i, j);
        }
      }
      emitted += take / record_width_;
    }
    data::Dataset chunk = codec_.decode(ctx.attributes, ctx.minmax, feats);
    for (auto& o : chunk) out.push_back(std::move(o));
    remaining -= b;
  }
  return out;
}

ConditionalResult DoppelGanger::generate_conditional_partial(
    int n, const std::function<bool(const data::Object&)>& accept,
    const ConditionalOptions& opts) {
  ConditionalResult res;
  res.objects.reserve(static_cast<size_t>(n));
  for (int round = 0;
       round < opts.max_batches && static_cast<int>(res.objects.size()) < n;
       ++round) {
    data::Dataset batch = generate(cfg_.batch);
    res.candidates += static_cast<long long>(batch.size());
    ++res.batches_used;
    for (auto& o : batch) {
      if (static_cast<int>(res.objects.size()) >= n) break;
      if (accept(o)) res.objects.push_back(std::move(o));
    }
  }
  res.complete = static_cast<int>(res.objects.size()) >= n;
  return res;
}

data::Dataset DoppelGanger::generate_conditional(
    int n, const std::function<bool(const data::Object&)>& accept,
    int max_batches) {
  ConditionalResult res =
      generate_conditional_partial(n, accept, {.max_batches = max_batches});
  if (!res.complete) {
    const std::string msg =
        "generate_conditional: target attributes too rare under the current "
        "attribute generator (matched " +
        std::to_string(res.objects.size()) + "/" + std::to_string(n) +
        " in " + std::to_string(res.candidates) +
        " candidates); consider retrain_attributes() or the partial API";
    throw ConditionalError(msg, std::move(res));
  }
  return std::move(res.objects);
}

void DoppelGanger::critic_step(nn::Mlp& critic, nn::Adam& opt,
                               const Matrix& real, const Matrix& fake,
                               float& loss_out, float* gp_out,
                               float* grad_norm_out) {
  DG_OBS_SPAN("train.critic_step", "train");
  const CriticFn fn = [&critic](const Var& x) { return critic.forward(x); };
  Var loss = cfg_.loss == GanLoss::WassersteinGp
                 ? critic_loss(fn, real, fake, cfg_.gp_weight, rng_, gp_out)
                 : standard_critic_loss(fn, real, fake);
  if (gp_out && cfg_.loss != GanLoss::WassersteinGp) *gp_out = 0.0f;
  loss_out = loss.value().at(0, 0);
  opt.zero_grad();
  loss.backward();
  if (grad_norm_out) *grad_norm_out = grad_global_norm(critic.parameters());
  opt.step();
}

void DoppelGanger::dp_critic_step(nn::Mlp& critic, nn::Adam& opt,
                                  const Matrix& real, const Matrix& fake,
                                  float& loss_out, float* gp_out,
                                  float* grad_norm_out) {
  DG_OBS_SPAN("train.dp_critic_step", "train");
  const DpOptions& dp = *cfg_.dp;
  const CriticFn fn = [&critic](const Var& x) { return critic.forward(x); };
  const auto params = critic.parameters();
  std::vector<Matrix> acc;
  acc.reserve(params.size());
  for (const Var& p : params) acc.emplace_back(p.rows(), p.cols(), 0.0f);

  const int n = real.rows();
  const int micro = std::max(1, std::min(dp.microbatches, n));
  float total_loss = 0.0f, total_gp = 0.0f;
  int n_micro = 0;
  for (int start = 0; start < n; start += (n + micro - 1) / micro) {
    const int end = std::min(n, start + (n + micro - 1) / micro);
    if (end <= start) break;
    float micro_gp = 0.0f;
    Var loss = critic_loss(fn, nn::slice_rows(Matrix(real), start, end),
                           nn::slice_rows(Matrix(fake), start, end),
                           cfg_.gp_weight, rng_, &micro_gp);
    total_loss += loss.value().at(0, 0);
    total_gp += micro_gp;
    ++n_micro;
    critic.zero_grad();
    loss.backward();
    nn::clip_grad_norm(params, dp.clip_norm);
    for (size_t i = 0; i < params.size(); ++i) {
      Var g = params[i].grad();
      if (!g.defined()) continue;
      const float* gv = g.value().data();
      float* av = acc[i].data();
      for (size_t j = 0; j < acc[i].size(); ++j) av[j] += gv[j];
    }
  }
  // Gaussian noise calibrated to the clipping norm, then average.
  const float sigma = dp.noise_multiplier * dp.clip_norm;
  critic.zero_grad();
  for (size_t i = 0; i < params.size(); ++i) {
    for (float& v : acc[i].flat()) {
      v = (v + static_cast<float>(rng_.normal(0.0, sigma))) /
          static_cast<float>(n_micro);
    }
    // Install the noisy averaged gradient by replaying it through backward.
    Var p = params[i];
    p.clear_grad();
    Var proxy = nn::sum(nn::mul(p, nn::constant(acc[i])));
    proxy.backward();
  }
  // The installed gradient is the released one (clipped + noised), so the
  // reported norm reflects what the optimizer actually consumes.
  if (grad_norm_out) *grad_norm_out = grad_global_norm(params);
  opt.step();
  loss_out = n_micro > 0 ? total_loss / static_cast<float>(n_micro) : 0.0f;
  if (gp_out) *gp_out = n_micro > 0 ? total_gp / static_cast<float>(n_micro) : 0.0f;
}

TrainStats DoppelGanger::run_training(const data::Dataset& train,
                                      int iterations) {
  if (train.empty()) throw std::invalid_argument("fit: empty training set");
  // Preflight: meta-execute the full training graph (shape rules, gradient
  // flow, WGAN-GP double-backward audit) with the live parameters overlaid,
  // so structural defects — including an accidentally frozen model — fail
  // here with attribution instead of mid-training.
  {
    std::vector<analysis::RuntimeParamInfo> runtime;
    std::vector<Var> all = generator_parameters();
    auto pd = disc_.parameters();
    all.insert(all.end(), pd.begin(), pd.end());
    if (cfg_.use_aux_discriminator) {
      auto pa = aux_disc_.parameters();
      all.insert(all.end(), pa.begin(), pa.end());
    }
    const auto expected =
        analysis::expected_parameter_shapes(codec_.schema(), cfg_);
    runtime.reserve(all.size());
    for (size_t i = 0; i < all.size(); ++i) {
      runtime.push_back({i < expected.size() ? expected[i].name
                                             : "param." + std::to_string(i),
                         all[i].rows(), all[i].cols(),
                         all[i].requires_grad()});
    }
    analysis::AnalyzeOptions opts;
    opts.runtime_params = runtime;
    const analysis::ModelAnalysis preflight =
        analysis::analyze_model(codec_.schema(), cfg_, opts);
    if (!preflight.ok()) {
      throw std::invalid_argument("fit: preflight failed:\n" +
                                  render_diagnostics(preflight.diagnostics));
    }
    // Second gate: the symbolic adjoint audit of one full training step —
    // backward shape soundness at every node, def-before-use on every
    // optimizer gradient slot, determinism-class consistency (see
    // analysis/train_step.h). A config that fails here would train without
    // crashing and converge wrong.
    analysis::TrainStepOptions step_opts;
    step_opts.runtime_params = runtime;
    const analysis::TrainingStepAnalysis step =
        analysis::analyze_training_step(codec_.schema(), cfg_, step_opts);
    if (!step.ok()) {
      throw std::invalid_argument("fit: training-step preflight failed:\n" +
                                  render_diagnostics(step.diagnostics));
    }
  }
  const data::EncodedDataset enc = codec_.encode(train);
  const int n = static_cast<int>(train.size());

  TrainStats stats;
  stats.d_loss.reserve(static_cast<size_t>(iterations));
  stats.g_loss.reserve(static_cast<size_t>(iterations));

  for (int iter = 0; iter < iterations; ++iter) {
    DG_OBS_SPAN("train.iteration", "train");
    const auto iter_t0 = std::chrono::steady_clock::now();
    float d_loss = 0.0f, aux_loss = 0.0f;
    float gp_penalty = 0.0f, d_grad_norm = 0.0f;
    for (int ds = 0; ds < cfg_.d_steps; ++ds) {
      // Real batch.
      const int b = std::min(cfg_.batch, n);
      auto idx = rng_.sample_without_replacement(n, b);
      Matrix real_attr = take_rows(enc.attributes, idx);
      Matrix real_mm = minmax_enabled_ ? take_rows(enc.minmax, idx) : Matrix(b, 0);
      Matrix real_feat = take_rows(enc.features, idx);
      Matrix real_full = hcat(real_attr, real_mm, real_feat);
      Matrix real_head = hcat(real_attr, real_mm);

      // Fake batch, detached (the critics' step must not touch G).
      Matrix fake_full, fake_head;
      {
        nn::NoGradGuard guard;
        GenOut f = forward(b);
        fake_full = hcat(f.attributes.value(), f.minmax.value(), f.features.value());
        fake_head = hcat(f.attributes.value(), f.minmax.value());
      }

      // Telemetry follows the full critic's last d-step (the aux critic's
      // penalty/norm are secondary; its loss is already reported).
      if (cfg_.dp) {
        dp_critic_step(disc_, d_opt_, real_full, fake_full, d_loss,
                       &gp_penalty, &d_grad_norm);
        if (cfg_.use_aux_discriminator) {
          dp_critic_step(aux_disc_, aux_opt_, real_head, fake_head, aux_loss);
        }
      } else {
        critic_step(disc_, d_opt_, real_full, fake_full, d_loss,
                    &gp_penalty, &d_grad_norm);
        if (cfg_.use_aux_discriminator) {
          critic_step(aux_disc_, aux_opt_, real_head, fake_head, aux_loss);
        }
      }
    }

    // Generator step: L1 + alpha * L2 (Eq. 2), minimized over G. The
    // critics are frozen so this backward pass neither builds graph through
    // their weights nor accumulates garbage into their grad slots (which
    // the next critic step would otherwise have to zero out).
    const int b = std::min(cfg_.batch, n);
    DG_OBS_SPAN("train.generator_step", "train");
    GenOut f = forward(b);
    nn::FreezeGuard freeze_disc(disc_);
    nn::FreezeGuard freeze_aux(aux_disc_);
    const auto g_term = [this](const nn::Mlp& critic, const Var& fake) {
      const CriticFn fn = [&critic](const Var& x) { return critic.forward(x); };
      return cfg_.loss == GanLoss::WassersteinGp
                 ? generator_loss(fn, fake)
                 : standard_generator_loss(fn, fake);
    };
    std::vector<Var> full_parts{f.attributes, f.minmax, f.features};
    Var g_loss = g_term(disc_, nn::concat_cols(full_parts));
    if (cfg_.use_aux_discriminator) {
      std::vector<Var> head_parts{f.attributes, f.minmax};
      g_loss = nn::add(g_loss, nn::mul_scalar(
                                   g_term(aux_disc_, nn::concat_cols(head_parts)),
                                   cfg_.aux_alpha));
    }
    g_opt_.zero_grad();
    g_loss.backward();
    const float g_grad_norm = grad_global_norm(generator_parameters());
    g_opt_.step();

    const FeatureSpread spread = feature_spread(f.features.value());
    const float wall_ms =
        std::chrono::duration<float, std::milli>(
            std::chrono::steady_clock::now() - iter_t0)
            .count();
    const float g_loss_v = g_loss.value().at(0, 0);

    stats.d_loss.push_back(d_loss);
    stats.aux_loss.push_back(aux_loss);
    stats.g_loss.push_back(g_loss_v);
    stats.gp_penalty.push_back(gp_penalty);
    stats.d_grad_norm.push_back(d_grad_norm);
    stats.g_grad_norm.push_back(g_grad_norm);
    stats.feat_spread.push_back(spread.mean_spread);
    stats.feat_min.push_back(spread.min);
    stats.feat_max.push_back(spread.max);
    stats.wall_ms.push_back(wall_ms);

    // Last-value gauges in the process registry (picked up by `dgcli check`
    // and any co-resident metrics export); the full series goes to the run
    // logger when one is attached.
    obs::Registry& reg = obs::Registry::global();
    reg.counter("train.iterations").add(1);
    reg.gauge("train.d_loss").set(d_loss);
    reg.gauge("train.g_loss").set(g_loss_v);
    reg.gauge("train.gp_penalty").set(gp_penalty);
    reg.gauge("train.feat_spread").set(spread.mean_spread);
    reg.histogram("train.iter_ms").record(wall_ms);

    const std::uint64_t global_iter = iters_done_++;
    if (run_logger_) {
      obs::TrainIterRecord rec;
      rec.iter = static_cast<int>(global_iter);
      rec.d_loss = d_loss;
      rec.aux_loss = aux_loss;
      rec.g_loss = g_loss_v;
      rec.gp_penalty = gp_penalty;
      rec.g_grad_norm = g_grad_norm;
      rec.d_grad_norm = d_grad_norm;
      rec.feat_spread = spread.mean_spread;
      rec.feat_min = spread.min;
      rec.feat_max = spread.max;
      rec.wall_ms = wall_ms;
      run_logger_->log_iteration(rec);
    }
  }
  return stats;
}

TrainStats DoppelGanger::fit(const data::Dataset& train) {
  return run_training(train, cfg_.iterations);
}

TrainStats DoppelGanger::fit_more(const data::Dataset& train, int iterations) {
  return run_training(train, iterations);
}

void DoppelGanger::retrain_attributes(
    const std::function<std::vector<float>(nn::Rng&)>& target_sampler,
    int iterations) {
  nn::Rng init = rng_.fork();
  nn::Mlp critic(codec_.attribute_dim(), 1, cfg_.disc_hidden, cfg_.disc_layers,
                 init);
  nn::Adam c_opt(critic.parameters(), {.lr = cfg_.lr});
  nn::Adam g_opt(attr_gen_.parameters(), {.lr = cfg_.lr});
  const CriticFn fn = [&critic](const Var& x) { return critic.forward(x); };

  for (int iter = 0; iter < iterations; ++iter) {
    const int b = cfg_.batch;
    for (int ds = 0; ds < cfg_.d_steps; ++ds) {
      std::vector<std::vector<float>> rows;
      rows.reserve(static_cast<size_t>(b));
      for (int i = 0; i < b; ++i) rows.push_back(target_sampler(rng_));
      Matrix real = data::encode_attribute_rows(codec_.schema(), rows);

      Matrix fake;
      {
        nn::NoGradGuard guard;
        fake = apply_blocks(attr_gen_.forward(noise(b, cfg_.attr_noise_dim)),
                            attr_blocks_)
                   .value();
      }
      Var closs = critic_loss(fn, real, fake, cfg_.gp_weight, rng_);
      c_opt.zero_grad();
      closs.backward();
      c_opt.step();
    }

    // As in run_training: freeze the critic for the generator's step.
    nn::FreezeGuard freeze_critic(critic);
    Var fake_attr = apply_blocks(
        attr_gen_.forward(noise(b, cfg_.attr_noise_dim)), attr_blocks_);
    Var gloss = generator_loss(fn, fake_attr);
    g_opt.zero_grad();
    gloss.backward();
    g_opt.step();
  }
}

void DoppelGanger::save(std::ostream& os) const {
  std::vector<Var> all = generator_parameters();
  auto pd = disc_.parameters();
  all.insert(all.end(), pd.begin(), pd.end());
  if (cfg_.use_aux_discriminator) {
    auto pa = aux_disc_.parameters();
    all.insert(all.end(), pa.begin(), pa.end());
  }
  nn::save_parameters(os, all);
}

void DoppelGanger::load(std::istream& is) {
  std::vector<Var> all = generator_parameters();
  auto pd = disc_.parameters();
  all.insert(all.end(), pd.begin(), pd.end());
  if (cfg_.use_aux_discriminator) {
    auto pa = aux_disc_.parameters();
    all.insert(all.end(), pa.begin(), pa.end());
  }
  nn::load_parameters(is, all);
}

}  // namespace dg::core
