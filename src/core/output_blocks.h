// Mixed-type generator outputs: the final linear layer of each generator is
// split into blocks, each with its own activation — softmax for categorical
// one-hots (and generation flags), sigmoid/tanh for continuous values. This
// is how DoppelGANger emits "data with the desired dimensionality and data
// types" (§4.1.1).
#pragma once

#include <vector>

#include "data/types.h"
#include "nn/autograd.h"
#include "nn/layers.h"

namespace dg::core {

struct OutputBlock {
  int width = 0;
  nn::Activation activation = nn::Activation::None;
};

/// Applies each block's activation to the corresponding column range.
nn::Var apply_blocks(const nn::Var& x, std::span<const OutputBlock> blocks);

int total_width(std::span<const OutputBlock> blocks);

/// Blocks for the attribute generator output (one-hot groups + [0,1] scalars).
std::vector<OutputBlock> attribute_blocks(const data::Schema& schema);

/// Blocks for the min/max generator output (two [0,1] scalars per
/// continuous feature).
std::vector<OutputBlock> minmax_blocks(const data::Schema& schema);

/// Blocks for one feature record including the two generation flags.
/// Continuous features are tanh when `autonorm` (values live in [-1,1]),
/// sigmoid otherwise.
std::vector<OutputBlock> record_blocks(const data::Schema& schema, bool autonorm);

/// `count` repetitions of `blocks` (e.g. S records per RNN step).
std::vector<OutputBlock> repeat_blocks(std::span<const OutputBlock> blocks,
                                       int count);

}  // namespace dg::core
