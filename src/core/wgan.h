// Wasserstein-GAN-with-gradient-penalty building blocks (§4.3):
//   L = E[D(fake)] - E[D(real)] + lambda * E[(||grad_xhat D(xhat)|| - 1)^2]
// The penalty differentiates through the critic's input gradient, which the
// autograd layer supports via create_graph=true; this only ever runs through
// MLP critics — exactly the paper's rationale for MLP discriminators (§4.2).
#pragma once

#include <functional>

#include "nn/autograd.h"
#include "nn/rng.h"

namespace dg::core {

using CriticFn = std::function<nn::Var(const nn::Var&)>;

/// E[(||grad_xhat D(xhat)||_2 - 1)^2] on per-sample random interpolates
/// xhat = t * real + (1-t) * fake.
nn::Var gradient_penalty(const CriticFn& critic, const nn::Matrix& real,
                         const nn::Matrix& fake, nn::Rng& rng);

/// Full critic loss (to *minimize* w.r.t. critic parameters). When `gp_out`
/// is non-null it receives the raw penalty term E[(||grad||-1)^2] (before
/// the gp_weight scaling; 0 when gp_weight <= 0) for telemetry.
nn::Var critic_loss(const CriticFn& critic, const nn::Matrix& real,
                    const nn::Matrix& fake, float gp_weight, nn::Rng& rng,
                    float* gp_out = nullptr);

/// Generator loss term for one critic: -E[D(fake)], with `fake` still
/// attached to the generator graph.
nn::Var generator_loss(const CriticFn& critic, const nn::Var& fake);

// ---- original (cross-entropy) GAN loss, for the §4.3 ablation ----
// The discriminator outputs a logit; sigmoid + BCE is applied here. The
// generator uses the non-saturating form -E[log D(fake)].

nn::Var standard_critic_loss(const CriticFn& critic, const nn::Matrix& real,
                             const nn::Matrix& fake);
nn::Var standard_generator_loss(const CriticFn& critic, const nn::Var& fake);

}  // namespace dg::core
