#include "core/preflight.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/package.h"
#include "data/io.h"

namespace dg::core {

namespace {

using analysis::Diagnostic;
using analysis::Severity;

void fail(std::vector<Diagnostic>& out, std::string code, std::string msg,
          std::string where) {
  out.push_back({Severity::kError, std::move(code), std::move(msg),
                 std::move(where), {}});
}

}  // namespace

analysis::ModelAnalysis preflight_config(const data::Schema& schema,
                                         const DoppelGangerConfig& cfg,
                                         const analysis::OpRegistry& registry) {
  analysis::AnalyzeOptions opts;
  opts.registry = &registry;
  return analysis::analyze_model(schema, cfg, opts);
}

PackagePreflight preflight_package(std::istream& is,
                                   const analysis::OpRegistry& registry) {
  PackagePreflight out;

  // ---- header: magic + schema section ----
  std::string line;
  if (!std::getline(is, line) || line != "doppelganger-package v1") {
    fail(out.diagnostics, "package-parse",
         "not a doppelganger package (bad magic line)", "package");
    return out;
  }
  std::size_t schema_bytes = 0;
  {
    std::getline(is, line);
    std::istringstream ls(line);
    std::string key;
    ls >> key >> schema_bytes;
    if (key != "schema_bytes" || schema_bytes == 0) {
      fail(out.diagnostics, "package-parse", "missing schema section",
           "package.schema");
      return out;
    }
  }
  std::string schema_text(schema_bytes, '\0');
  is.read(schema_text.data(), static_cast<std::streamsize>(schema_bytes));
  if (!is) {
    fail(out.diagnostics, "package-parse", "truncated schema section",
         "package.schema");
    return out;
  }
  try {
    std::istringstream schema_ss(schema_text);
    out.schema = data::load_schema(schema_ss);
  } catch (const std::exception& e) {
    fail(out.diagnostics, "package-parse",
         std::string("schema does not parse: ") + e.what(), "package.schema");
    return out;
  }

  // ---- config section ----
  try {
    out.config = load_config(is);
  } catch (const std::exception& e) {
    fail(out.diagnostics, "package-parse",
         std::string("config does not parse: ") + e.what(), "package.config");
    return out;
  }
  out.header_ok = true;

  // ---- schema <-> config consistency (full static model analysis) ----
  const analysis::ModelAnalysis analysis =
      preflight_config(out.schema, out.config, registry);
  for (const Diagnostic& d : analysis.diagnostics) {
    out.diagnostics.push_back(d);
  }

  // ---- generation tape: lower + verify, so a package whose serving tape
  // would be rejected (or fall back to autograd) is flagged before load ----
  if (!analysis::has_errors(analysis.diagnostics)) {
    const analysis::TapeReport tape_report =
        analysis::build_generation_tape(out.schema, out.config);
    out.tape = analysis::summarize_tape(tape_report);
    for (const Diagnostic& d : tape_report.diagnostics) {
      out.diagnostics.push_back(d);
    }
  }

  // ---- weight section: header-only shape census ----
  try {
    out.weight_matrices = nn::peek_matrix_shapes(is);
  } catch (const std::exception& e) {
    fail(out.diagnostics, "package-parse",
         std::string("weight section unreadable: ") + e.what(),
         "package.weights");
    out.ok = false;
    return out;
  }

  if (!analysis.parameters.empty() || analysis.ok()) {
    const auto& expected = analysis.parameters;
    if (out.weight_matrices.size() != expected.size()) {
      fail(out.diagnostics, "weight-shape",
           "package carries " + std::to_string(out.weight_matrices.size()) +
               " matrices; schema + config imply " +
               std::to_string(expected.size()) +
               " (did use_minmax_generator / use_aux_discriminator or layer "
               "counts change?)",
           "package.weights");
    } else {
      for (size_t i = 0; i < expected.size(); ++i) {
        const analysis::ParamShape& e = expected[i];
        const nn::MatrixShape& m = out.weight_matrices[i];
        if (m.rows != e.rows || m.cols != e.cols) {
          fail(out.diagnostics, "weight-shape",
               "matrix " + std::to_string(i) + " is [" +
                   std::to_string(m.rows) + ", " + std::to_string(m.cols) +
                   "]; expected [" + std::to_string(e.rows) + ", " +
                   std::to_string(e.cols) + "]",
               e.name);
        }
      }
    }
  }

  out.ok = !analysis::has_errors(out.diagnostics);
  return out;
}

PackagePreflight preflight_package_file(const std::string& path,
                                        const analysis::OpRegistry& registry) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    PackagePreflight out;
    fail(out.diagnostics, "package-parse", "cannot open " + path, "package");
    return out;
  }
  return preflight_package(is, registry);
}

std::string render_diagnostics(
    std::span<const analysis::Diagnostic> diagnostics) {
  std::ostringstream os;
  analysis::print_human(os, diagnostics);
  return os.str();
}

}  // namespace dg::core
