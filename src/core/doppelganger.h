// DoppelGANger (Lin et al., IMC 2020): the paper's architecture of Fig 6.
//
//   attribute MLP  ->  min/max MLP  ->  LSTM + MLP head (S records/step)
//        |                 |                  |
//        +---------+-------+------------------+
//                  v                          v
//          auxiliary critic             full-object critic
//
// Key mechanics implemented here:
//  * decoupled attribute / feature generation with the attributes (and the
//    generated per-sample min/max "fake attributes") fed to the LSTM at
//    every step (§4.1.2, §4.1.3);
//  * batched generation: the MLP head emits S consecutive records per LSTM
//    step (§4.1.1);
//  * generation flags with a differentiable continuation mask so generated
//    series are zero-padded past their end exactly like real ones (§4.1.1);
//  * two WGAN-GP critics combined as L1 + alpha * L2 (§4.2-4.3);
//  * attribute-generator retraining for flexibility / attribute-distribution
//    masking (§5.2, §5.3.2);
//  * optional DP-SGD training of the critics (§5.3.1).
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/output_blocks.h"
#include "data/encoding.h"
#include "data/types.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/rng.h"
#include "obs/runlog.h"

namespace dg::core {

/// Loss family (§4.3): the paper adopts Wasserstein-with-gradient-penalty
/// after finding the original cross-entropy loss markedly worse for
/// categorical variables; Standard is kept for that ablation.
enum class GanLoss { WassersteinGp, Standard };

/// DP-SGD settings for the critics (the only networks that see real data).
struct DpOptions {
  float clip_norm = 1.0f;
  float noise_multiplier = 1.0f;
  int microbatches = 8;
};

struct DoppelGangerConfig {
  // Generator sizes (defaults follow Appendix B).
  int attr_noise_dim = 5;
  int minmax_noise_dim = 5;
  int feat_noise_dim = 5;
  int attr_hidden = 100;
  int attr_layers = 2;
  int minmax_hidden = 100;
  int minmax_layers = 2;
  int lstm_units = 100;
  int head_hidden = 100;
  /// S: records emitted per LSTM step; the paper recommends T/S ~= 50.
  int sample_len = 10;
  /// Auto-normalization via the min/max generator (§4.1.3). Also controls
  /// whether training data is per-sample normalized.
  bool use_minmax_generator = true;
  /// Auxiliary attribute critic (§4.2).
  bool use_aux_discriminator = true;
  /// alpha weighting of the auxiliary critic loss (Eq. 2).
  float aux_alpha = 1.0f;

  // Critics.
  GanLoss loss = GanLoss::WassersteinGp;
  int disc_hidden = 200;
  int disc_layers = 4;
  float gp_weight = 10.0f;
  int d_steps = 1;

  // Optimization.
  float lr = 1e-3f;
  int batch = 50;
  int iterations = 400;
  uint64_t seed = 0;
  std::optional<DpOptions> dp;
};

struct TrainStats {
  std::vector<float> d_loss;
  std::vector<float> aux_loss;
  std::vector<float> g_loss;
  // Telemetry series, one entry per iteration (same length as the above):
  std::vector<float> gp_penalty;   // raw E[(||grad||-1)^2] of the full critic's
                                   // last d-step (before gp_weight scaling)
  std::vector<float> d_grad_norm;  // global L2 of the full critic's gradients
                                   // after its last d-step backward
  std::vector<float> g_grad_norm;  // global L2 of the generator's gradients
  std::vector<float> feat_spread;  // collapse sentinel: mean per-column
                                   // (max - min) over the fake feature batch
  std::vector<float> feat_min;     // batch-global extrema of fake features
  std::vector<float> feat_max;
  std::vector<float> wall_ms;      // wall time of the iteration
};

/// Per-series conditioning sampled once up front: the activated attribute
/// and min/max generator outputs (the LSTM sees them at every step). Rows
/// are independent lanes — the batched stepper below never mixes rows, so a
/// lane's output depends only on its own context and noise stream.
struct GenContext {
  nn::Matrix attributes;  // [n, attr_dim]
  nn::Matrix minmax;      // [n, minmax_dim] (0-wide when disabled)
  nn::Matrix cond;        // [n, attr_dim + minmax_dim] (precomputed concat)
};

/// Recurrent state of a batch of lanes advanced one LSTM step at a time.
struct GenState {
  nn::Matrix h;     // [n, lstm_units]
  nn::Matrix c;     // [n, lstm_units]
  nn::Matrix mask;  // [n, 1] continuation mask (product of continue flags)
  int step = 0;     // LSTM steps taken so far
};

/// Options for rejection-sampled conditional generation.
struct ConditionalOptions {
  /// Generation rounds (of `cfg.batch` candidates each) before giving up.
  int max_batches = 200;
};

/// Outcome of conditional generation; `objects` holds whatever matched even
/// when the target count was not reached.
struct ConditionalResult {
  data::Dataset objects;
  bool complete = false;   // objects.size() == requested
  int batches_used = 0;    // generation rounds consumed
  long long candidates = 0;  // total candidates drawn
};

/// Thrown by the strict generate_conditional API when the accept predicate
/// is too rare; carries the partial results instead of discarding them.
class ConditionalError : public std::runtime_error {
 public:
  ConditionalError(const std::string& msg, ConditionalResult partial)
      : std::runtime_error(msg), partial_(std::move(partial)) {}
  /// Everything that *was* matched before the attempt budget ran out.
  const ConditionalResult& partial() const { return partial_; }

 private:
  ConditionalResult partial_;
};

class DoppelGanger {
 public:
  DoppelGanger(data::Schema schema, DoppelGangerConfig cfg);

  /// Trains for cfg.iterations generator steps (call repeatedly with
  /// fit_more to continue — useful for epoch sweeps).
  TrainStats fit(const data::Dataset& train);
  TrainStats fit_more(const data::Dataset& train, int iterations);

  /// Streams every training iteration's telemetry (losses, grad norms,
  /// gradient-penalty magnitude, the feature-range collapse sentinel) to a
  /// run directory as JSONL, consumable live by `dgcli top` and offline by
  /// tools/plot_run.py. Iteration numbering is cumulative across fit /
  /// fit_more calls. Pass nullptr to detach.
  void set_run_logger(std::shared_ptr<obs::RunLogger> logger) {
    run_logger_ = std::move(logger);
  }

  /// Draws n synthetic objects from the trained model. Built on the
  /// stepwise API below (sample_context / generation_step) with the model's
  /// own RNG, so it stays bit-identical to the historical monolithic path.
  data::Dataset generate(int n);

  /// Rejection-samples n objects whose attributes satisfy `accept` — the
  /// consumer-side "desired attribute distribution" input of Fig 2 when
  /// retraining the attribute generator is not warranted. Throws a
  /// ConditionalError (carrying the partial results) if fewer than n
  /// matches are found within `max_batches` generation rounds.
  data::Dataset generate_conditional(
      int n, const std::function<bool(const data::Object&)>& accept,
      int max_batches = 200);

  /// Non-throwing conditional generation: returns whatever matched within
  /// the round budget, flagged complete/incomplete (the serving path uses
  /// this so rare predicates degrade to partial responses, not errors).
  ConditionalResult generate_conditional_partial(
      int n, const std::function<bool(const data::Object&)>& accept,
      const ConditionalOptions& opts = {});

  // ---- stepwise generation (inference; the serving runtime's substrate) --
  //
  // A series is produced as: ctx = sample_context(...), st = initial state,
  // then steps_per_series() calls to generation_step(), each emitting
  // sample_len() records per lane. All methods are const and draw solely
  // from the caller-supplied RNG / noise, so independent callers can share
  // one loaded model. Row r of every matrix is an independent lane: the
  // kernels underneath are row-partitioned, so a lane's records are
  // bit-identical regardless of what the other lanes in the batch carry —
  // the determinism contract src/serve's slot recycling is built on.

  /// Samples n series' conditioning (attribute + min/max rows) from `rng`.
  GenContext sample_context(int n, nn::Rng& rng) const;

  /// As sample_context, but clamps the listed attribute fields to fixed raw
  /// values after sampling (categorical: category index; continuous: raw
  /// value), re-encoding the row before the min/max generator sees it. An
  /// empty index list means "fix nothing" and is identical to
  /// sample_context. Field indices are schema attribute positions.
  GenContext sample_context_fixed(
      int n, const std::vector<std::pair<int, float>>& fixed,
      nn::Rng& rng) const;

  /// Zeroed LSTM state + all-ones continuation masks for n lanes.
  GenState initial_gen_state(int n) const;

  /// Advances every lane one LSTM step: consumes noise [n, feat_noise_dim]
  /// (one row per lane, drawn by the caller), updates `state` in place and
  /// returns the sample_len() new records [n, sample_len * record_width()],
  /// already continuation-masked exactly like the training-time unroll.
  nn::Matrix generation_step(const GenContext& ctx, const nn::Matrix& noise,
                             GenState& state) const;

  int steps_per_series() const { return steps_per_series_; }
  int sample_len() const { return cfg_.sample_len; }
  int record_width() const { return record_width_; }
  int feat_noise_dim() const { return cfg_.feat_noise_dim; }

  /// Re-seeds the model's own generation RNG (used by `dgcli generate
  /// --seed` and the package round-trip tests to pin regeneration).
  void reseed(uint64_t seed) { rng_ = nn::Rng(seed); }

  /// Flexibility / business-secret masking (§5.2, §5.3.2): adversarially
  /// retrains ONLY the attribute generator against raw attribute rows drawn
  /// from `target_sampler`; the conditional feature generator is untouched.
  void retrain_attributes(
      const std::function<std::vector<float>(nn::Rng&)>& target_sampler,
      int iterations);

  /// Model release (Fig 2): (de)serializes every network's parameters. The
  /// receiving side must construct the model with the same schema + config.
  void save(std::ostream& os) const;
  void load(std::istream& is);

  const data::Schema& schema() const { return codec_.schema(); }
  const DoppelGangerConfig& config() const { return cfg_; }
  const data::GanCodec& codec() const { return codec_; }
  std::vector<nn::Var> generator_parameters() const;

 private:
  struct GenOut {
    nn::Var attributes;  // [n, attr_dim]
    nn::Var minmax;      // [n, minmax_dim] (0-wide when disabled)
    nn::Var features;    // [n, tmax * record_width]
  };

  GenOut forward(int n);
  nn::Var noise(int n, int dim);
  void critic_step(nn::Mlp& critic, nn::Adam& opt, const nn::Matrix& real,
                   const nn::Matrix& fake, float& loss_out,
                   float* gp_out = nullptr, float* grad_norm_out = nullptr);
  void dp_critic_step(nn::Mlp& critic, nn::Adam& opt, const nn::Matrix& real,
                      const nn::Matrix& fake, float& loss_out,
                      float* gp_out = nullptr, float* grad_norm_out = nullptr);
  TrainStats run_training(const data::Dataset& train, int iterations);

  DoppelGangerConfig cfg_;
  data::GanCodec codec_;
  bool minmax_enabled_ = false;

  std::vector<OutputBlock> attr_blocks_;
  std::vector<OutputBlock> minmax_blocks_;
  std::vector<OutputBlock> step_blocks_;  // S records worth of blocks
  int record_width_ = 0;
  int steps_per_series_ = 0;

  nn::Mlp attr_gen_;
  nn::Mlp minmax_gen_;
  nn::LstmCell lstm_;
  nn::Mlp head_;
  nn::Mlp disc_;
  nn::Mlp aux_disc_;

  nn::Adam g_opt_;
  nn::Adam d_opt_;
  nn::Adam aux_opt_;
  nn::Rng rng_;

  std::shared_ptr<obs::RunLogger> run_logger_;
  std::uint64_t iters_done_ = 0;  // cumulative across fit / fit_more
};

}  // namespace dg::core
