// DoppelGANger (Lin et al., IMC 2020): the paper's architecture of Fig 6.
//
//   attribute MLP  ->  min/max MLP  ->  LSTM + MLP head (S records/step)
//        |                 |                  |
//        +---------+-------+------------------+
//                  v                          v
//          auxiliary critic             full-object critic
//
// Key mechanics implemented here:
//  * decoupled attribute / feature generation with the attributes (and the
//    generated per-sample min/max "fake attributes") fed to the LSTM at
//    every step (§4.1.2, §4.1.3);
//  * batched generation: the MLP head emits S consecutive records per LSTM
//    step (§4.1.1);
//  * generation flags with a differentiable continuation mask so generated
//    series are zero-padded past their end exactly like real ones (§4.1.1);
//  * two WGAN-GP critics combined as L1 + alpha * L2 (§4.2-4.3);
//  * attribute-generator retraining for flexibility / attribute-distribution
//    masking (§5.2, §5.3.2);
//  * optional DP-SGD training of the critics (§5.3.1).
#pragma once

#include <functional>
#include <iosfwd>
#include <optional>
#include <vector>

#include "core/output_blocks.h"
#include "data/encoding.h"
#include "data/types.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/rng.h"

namespace dg::core {

/// Loss family (§4.3): the paper adopts Wasserstein-with-gradient-penalty
/// after finding the original cross-entropy loss markedly worse for
/// categorical variables; Standard is kept for that ablation.
enum class GanLoss { WassersteinGp, Standard };

/// DP-SGD settings for the critics (the only networks that see real data).
struct DpOptions {
  float clip_norm = 1.0f;
  float noise_multiplier = 1.0f;
  int microbatches = 8;
};

struct DoppelGangerConfig {
  // Generator sizes (defaults follow Appendix B).
  int attr_noise_dim = 5;
  int minmax_noise_dim = 5;
  int feat_noise_dim = 5;
  int attr_hidden = 100;
  int attr_layers = 2;
  int minmax_hidden = 100;
  int minmax_layers = 2;
  int lstm_units = 100;
  int head_hidden = 100;
  /// S: records emitted per LSTM step; the paper recommends T/S ~= 50.
  int sample_len = 10;
  /// Auto-normalization via the min/max generator (§4.1.3). Also controls
  /// whether training data is per-sample normalized.
  bool use_minmax_generator = true;
  /// Auxiliary attribute critic (§4.2).
  bool use_aux_discriminator = true;
  /// alpha weighting of the auxiliary critic loss (Eq. 2).
  float aux_alpha = 1.0f;

  // Critics.
  GanLoss loss = GanLoss::WassersteinGp;
  int disc_hidden = 200;
  int disc_layers = 4;
  float gp_weight = 10.0f;
  int d_steps = 1;

  // Optimization.
  float lr = 1e-3f;
  int batch = 50;
  int iterations = 400;
  uint64_t seed = 0;
  std::optional<DpOptions> dp;
};

struct TrainStats {
  std::vector<float> d_loss;
  std::vector<float> aux_loss;
  std::vector<float> g_loss;
};

class DoppelGanger {
 public:
  DoppelGanger(data::Schema schema, DoppelGangerConfig cfg);

  /// Trains for cfg.iterations generator steps (call repeatedly with
  /// fit_more to continue — useful for epoch sweeps).
  TrainStats fit(const data::Dataset& train);
  TrainStats fit_more(const data::Dataset& train, int iterations);

  /// Draws n synthetic objects from the trained model.
  data::Dataset generate(int n);

  /// Rejection-samples n objects whose attributes satisfy `accept` — the
  /// consumer-side "desired attribute distribution" input of Fig 2 when
  /// retraining the attribute generator is not warranted. Throws if fewer
  /// than n matches are found within `max_batches` generation rounds.
  data::Dataset generate_conditional(
      int n, const std::function<bool(const data::Object&)>& accept,
      int max_batches = 200);

  /// Flexibility / business-secret masking (§5.2, §5.3.2): adversarially
  /// retrains ONLY the attribute generator against raw attribute rows drawn
  /// from `target_sampler`; the conditional feature generator is untouched.
  void retrain_attributes(
      const std::function<std::vector<float>(nn::Rng&)>& target_sampler,
      int iterations);

  /// Model release (Fig 2): (de)serializes every network's parameters. The
  /// receiving side must construct the model with the same schema + config.
  void save(std::ostream& os) const;
  void load(std::istream& is);

  const data::Schema& schema() const { return codec_.schema(); }
  const DoppelGangerConfig& config() const { return cfg_; }
  const data::GanCodec& codec() const { return codec_; }
  std::vector<nn::Var> generator_parameters() const;

 private:
  struct GenOut {
    nn::Var attributes;  // [n, attr_dim]
    nn::Var minmax;      // [n, minmax_dim] (0-wide when disabled)
    nn::Var features;    // [n, tmax * record_width]
  };

  GenOut forward(int n);
  nn::Var noise(int n, int dim);
  void critic_step(nn::Mlp& critic, nn::Adam& opt, const nn::Matrix& real,
                   const nn::Matrix& fake, float& loss_out);
  void dp_critic_step(nn::Mlp& critic, nn::Adam& opt, const nn::Matrix& real,
                      const nn::Matrix& fake, float& loss_out);
  TrainStats run_training(const data::Dataset& train, int iterations);

  DoppelGangerConfig cfg_;
  data::GanCodec codec_;
  bool minmax_enabled_ = false;

  std::vector<OutputBlock> attr_blocks_;
  std::vector<OutputBlock> minmax_blocks_;
  std::vector<OutputBlock> step_blocks_;  // S records worth of blocks
  int record_width_ = 0;
  int steps_per_series_ = 0;

  nn::Mlp attr_gen_;
  nn::Mlp minmax_gen_;
  nn::LstmCell lstm_;
  nn::Mlp head_;
  nn::Mlp disc_;
  nn::Mlp aux_disc_;

  nn::Adam g_opt_;
  nn::Adam d_opt_;
  nn::Adam aux_opt_;
  nn::Rng rng_;
};

}  // namespace dg::core
