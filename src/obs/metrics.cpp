#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/tracectx.h"

namespace dg::obs {

double exact_quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  // Nearest-rank: the smallest value with at least ceil(q*n) samples <= it.
  const double n = static_cast<double>(values.size());
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank > 0) --rank;  // to 0-based index
  rank = std::min(rank, values.size() - 1);
  return values[rank];
}

std::vector<double> Histogram::default_bounds() {
  std::vector<double> b;
  for (double u = 0.01; u < 1e5; u *= 4.0) b.push_back(u);
  return b;
}

Histogram::Histogram(HistogramOptions opts)
    : bounds_(opts.bounds.empty() ? default_bounds() : std::move(opts.bounds)),
      buckets_(bounds_.size() + 1, 0),
      window_cap_(opts.window) {
  window_.reserve(window_cap_);
}

void Histogram::record(double v, std::uint64_t trace_id) {
  MutexLock lock(mu_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  ++buckets_[bucket];
  if (trace_id != 0) {
    if (exemplars_.empty()) exemplars_.resize(buckets_.size());
    Exemplar& ex = exemplars_[bucket];
    if (ex.trace_id == 0 || v >= ex.value) ex = Exemplar{trace_id, v};
  }
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
  if (window_cap_ == 0) return;
  if (window_.size() < window_cap_) {
    window_.push_back(v);
  } else {
    window_[pos_] = v;
    pos_ = (pos_ + 1) % window_cap_;
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  std::vector<double> window_copy;
  {
    MutexLock lock(mu_);
    s.count = count_;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
    s.bounds = bounds_;
    s.buckets = buckets_;
    s.exemplars = exemplars_;
    // Only the filled portion of the ring participates in the order
    // statistics; window_ never contains unwritten slots by construction
    // (it grows element-by-element up to window_cap_).
    window_copy = window_;
  }
  s.window_filled = window_copy.size();
  if (!window_copy.empty()) {
    std::sort(window_copy.begin(), window_copy.end());
    const auto at = [&](double q) {
      const double n = static_cast<double>(window_copy.size());
      std::size_t rank = static_cast<std::size_t>(std::ceil(q * n));
      if (rank > 0) --rank;
      return window_copy[std::min(rank, window_copy.size() - 1)];
    };
    s.p50 = at(0.50);
    s.p90 = at(0.90);
    s.p99 = at(0.99);
  }
  return s;
}

void Histogram::reset() {
  MutexLock lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  window_.clear();
  pos_ = 0;
  exemplars_.clear();
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, HistogramOptions opts) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(opts)))
             .first;
  }
  return *it->second;
}

RegistrySnapshot Registry::snapshot() const {
  RegistrySnapshot s;
  MutexLock lock(mu_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->get());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->get());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->snapshot());
  }
  return s;
}

void Registry::reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string to_json(const RegistrySnapshot& snap) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    append_number(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ":{\"count\":" + std::to_string(h.count);
    out += ",\"sum\":";
    append_number(out, h.sum);
    out += ",\"min\":";
    append_number(out, h.min);
    out += ",\"max\":";
    append_number(out, h.max);
    out += ",\"p50\":";
    append_number(out, h.p50);
    out += ",\"p90\":";
    append_number(out, h.p90);
    out += ",\"p99\":";
    append_number(out, h.p99);
    out += ",\"window\":" + std::to_string(h.window_filled);
    out += ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ',';
      append_number(out, h.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(h.buckets[i]);
    }
    out += ']';
    // Omitted-when-absent, and sparse: only buckets holding an exemplar.
    bool any_ex = false;
    for (const Exemplar& ex : h.exemplars) any_ex |= ex.trace_id != 0;
    if (any_ex) {
      out += ",\"exemplars\":[";
      bool ex_first = true;
      for (std::size_t i = 0; i < h.exemplars.size(); ++i) {
        if (h.exemplars[i].trace_id == 0) continue;
        if (!ex_first) out += ',';
        ex_first = false;
        out += "{\"bucket\":" + std::to_string(i);
        out += ",\"trace\":";
        append_escaped(out, trace_id_hex(h.exemplars[i].trace_id));
        out += ",\"v\":";
        append_number(out, h.exemplars[i].value);
        out += '}';
      }
      out += ']';
    }
    out += '}';
  }
  out += "}}";
  return out;
}

namespace {

// Nearest-rank quantile over a merged bucket CDF: the upper bound of the
// first bucket whose cumulative count reaches ceil(q * total). The overflow
// bucket (past the last bound) reports the lifetime max instead — there is
// no finite upper bound to name.
double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& buckets,
                       std::uint64_t total, double max_seen, double q) {
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum >= rank && rank > 0) {
      // Clamp to the lifetime max: a sparsely-filled bucket's upper bound
      // can exceed every sample actually seen.
      return i < bounds.size() ? std::min(bounds[i], max_seen) : max_seen;
    }
  }
  return max_seen;
}

}  // namespace

RegistrySnapshot merge_snapshots(const std::vector<RegistrySnapshot>& parts) {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  struct HistAcc {
    HistogramSnapshot h;
    bool bounds_ok = true;   // all parts so far shared one bounds vector
    bool started = false;
    double fallback_p50 = 0.0, fallback_p90 = 0.0, fallback_p99 = 0.0;
  };
  std::map<std::string, HistAcc> hists;

  for (const RegistrySnapshot& p : parts) {
    for (const auto& [name, v] : p.counters) counters[name] += v;
    for (const auto& [name, v] : p.gauges) gauges[name] += v;
    for (const auto& [name, h] : p.histograms) {
      HistAcc& acc = hists[name];
      if (!acc.started) {
        acc.h.bounds = h.bounds;
        acc.h.buckets.assign(h.bounds.size() + 1, 0);
        acc.h.min = h.min;
        acc.h.max = h.max;
        acc.started = true;
      }
      if (h.count > 0) {
        if (acc.h.count == 0 || h.min < acc.h.min) acc.h.min = h.min;
        if (acc.h.count == 0 || h.max > acc.h.max) acc.h.max = h.max;
      }
      acc.h.count += h.count;
      acc.h.sum += h.sum;
      acc.h.window_filled += h.window_filled;
      if (h.bounds == acc.h.bounds && h.buckets.size() == acc.h.buckets.size()) {
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
          acc.h.buckets[i] += h.buckets[i];
        }
        if (!h.exemplars.empty()) {
          if (acc.h.exemplars.empty()) {
            acc.h.exemplars.resize(acc.h.buckets.size());
          }
          const std::size_t n =
              std::min(h.exemplars.size(), acc.h.exemplars.size());
          for (std::size_t i = 0; i < n; ++i) {
            const Exemplar& ex = h.exemplars[i];
            if (ex.trace_id == 0) continue;
            Exemplar& dst = acc.h.exemplars[i];
            if (dst.trace_id == 0 || ex.value > dst.value) dst = ex;
          }
        }
      } else {
        acc.bounds_ok = false;
      }
      acc.fallback_p50 = std::max(acc.fallback_p50, h.p50);
      acc.fallback_p90 = std::max(acc.fallback_p90, h.p90);
      acc.fallback_p99 = std::max(acc.fallback_p99, h.p99);
    }
  }

  RegistrySnapshot out;
  out.counters.assign(counters.begin(), counters.end());
  out.gauges.assign(gauges.begin(), gauges.end());
  out.histograms.reserve(hists.size());
  for (auto& [name, acc] : hists) {
    if (acc.bounds_ok) {
      acc.h.p50 = bucket_quantile(acc.h.bounds, acc.h.buckets, acc.h.count,
                                  acc.h.max, 0.50);
      acc.h.p90 = bucket_quantile(acc.h.bounds, acc.h.buckets, acc.h.count,
                                  acc.h.max, 0.90);
      acc.h.p99 = bucket_quantile(acc.h.bounds, acc.h.buckets, acc.h.count,
                                  acc.h.max, 0.99);
    } else {
      acc.h.p50 = acc.fallback_p50;
      acc.h.p90 = acc.fallback_p90;
      acc.h.p99 = acc.fallback_p99;
      acc.h.exemplars.clear();  // bucket indices don't line up across bounds
    }
    out.histograms.emplace_back(name, std::move(acc.h));
  }
  return out;
}

}  // namespace dg::obs
