#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <ostream>

#include "obs/metrics.h"
#include "obs/tracectx.h"

namespace dg::obs {

namespace {

constexpr std::size_t kDefaultSpanCap = 65536;

std::atomic<bool> g_enabled{false};

std::mutex g_mu;
// Capped ring: grows element-by-element to g_cap, then overwrites the
// oldest entry (g_pos is the next overwrite slot == the oldest event).
std::vector<TraceEvent> g_events;
std::size_t g_cap = kDefaultSpanCap;
std::size_t g_pos = 0;
// The trace epoch, as steady_clock nanoseconds. An atomic rather than a
// time_point so now_us() — called on every span open/close — never takes
// g_mu and stays race-free against a concurrent start()/clear().
std::atomic<std::int64_t> g_epoch_ns{0};
std::atomic<std::uint64_t> g_dropped{0};

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Small stable per-thread ids (Chrome renders one track per tid).
std::atomic<std::uint64_t> g_next_tid{1};
thread_local std::uint64_t t_tid = 0;
thread_local int t_depth = 0;

std::uint64_t this_tid() {
  if (t_tid == 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

std::size_t span_cap_from_env() {
  const char* s = std::getenv("DG_OBS_SPAN_CAP");
  if (s == nullptr || *s == '\0') return kDefaultSpanCap;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || v <= 0) return kDefaultSpanCap;
  return static_cast<std::size_t>(v);
}

// Requires g_mu. Chronological (oldest-first) copy-out of the ring.
std::vector<TraceEvent> ordered_events_locked() {
  std::vector<TraceEvent> out;
  out.reserve(g_events.size());
  if (g_events.size() == g_cap && g_pos != 0) {
    out.insert(out.end(), g_events.begin() + static_cast<std::ptrdiff_t>(g_pos),
               g_events.end());
    out.insert(out.end(), g_events.begin(),
               g_events.begin() + static_cast<std::ptrdiff_t>(g_pos));
  } else {
    out = g_events;
  }
  return out;
}

// Requires g_mu.
void push_locked(TraceEvent&& e) {
  if (g_events.size() < g_cap) {
    g_events.push_back(std::move(e));
    return;
  }
  g_events[g_pos] = std::move(e);
  g_pos = (g_pos + 1) % g_cap;
  g_dropped.fetch_add(1, std::memory_order_relaxed);
  Registry::global().counter("obs.trace.dropped_spans").add(1);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_ids(std::string& out, const TraceEvent& e) {
  if (e.trace_id == 0) return;
  out += ",\"trace\":\"" + trace_id_hex(e.trace_id) + '"';
  out += ",\"span\":\"" + trace_id_hex(e.span_id) + '"';
  if (e.parent_span != 0) {
    out += ",\"parent\":\"" + trace_id_hex(e.parent_span) + '"';
  }
}

}  // namespace

void Trace::start() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_events.clear();
  g_pos = 0;
  g_cap = span_cap_from_env();
  g_dropped.store(0, std::memory_order_relaxed);
  g_epoch_ns.store(steady_ns(), std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_release);
}

void Trace::stop() { g_enabled.store(false, std::memory_order_release); }

bool Trace::enabled() { return g_enabled.load(std::memory_order_relaxed); }

std::vector<TraceEvent> Trace::events() {
  std::lock_guard<std::mutex> lock(g_mu);
  return ordered_events_locked();
}

std::vector<TraceEvent> Trace::drain() {
  std::lock_guard<std::mutex> lock(g_mu);
  std::vector<TraceEvent> out = ordered_events_locked();
  g_events.clear();
  g_pos = 0;
  return out;
}

void Trace::clear() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_events.clear();
  g_pos = 0;
  g_epoch_ns.store(steady_ns(), std::memory_order_relaxed);
}

std::uint64_t Trace::dropped() {
  return g_dropped.load(std::memory_order_relaxed);
}

std::int64_t Trace::now_us() {
  return (steady_ns() - g_epoch_ns.load(std::memory_order_relaxed)) / 1000;
}

void Trace::record(TraceEvent e) {
  if (!enabled()) return;
  if (e.tid == 0) e.tid = this_tid();
  std::lock_guard<std::mutex> lock(g_mu);
  push_locked(std::move(e));
}

void Trace::write_chrome(std::ostream& os) {
  const std::vector<TraceEvent> evs = events();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : evs) {
    std::string line;
    if (!first) line += ',';
    first = false;
    line += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    line += ",\"ts\":" + std::to_string(e.ts_us);
    line += ",\"dur\":" + std::to_string(e.dur_us);
    line += ",\"name\":";
    append_escaped(line, e.name);
    line += ",\"cat\":";
    append_escaped(line, e.category);
    line += ",\"args\":{\"depth\":" + std::to_string(e.depth);
    append_ids(line, e);
    line += "}}";
    os << line;
  }
  os << "]}";
}

void Trace::write_jsonl(std::ostream& os) {
  const std::vector<TraceEvent> evs = events();
  for (const TraceEvent& e : evs) {
    std::string line = "{\"name\":";
    append_escaped(line, e.name);
    line += ",\"cat\":";
    append_escaped(line, e.category);
    line += ",\"tid\":" + std::to_string(e.tid);
    line += ",\"ts_us\":" + std::to_string(e.ts_us);
    line += ",\"dur_us\":" + std::to_string(e.dur_us);
    line += ",\"depth\":" + std::to_string(e.depth);
    append_ids(line, e);
    line += "}";
    os << line << "\n";
  }
}

Span::Span(const char* name, const char* category)
    : name_(name), category_(category) {
  if (!Trace::enabled()) return;
  active_ = true;
  depth_ = t_depth++;
  // Attach to the ambient distributed-trace context when one is installed:
  // the span takes its own id and becomes the parent of everything it
  // lexically encloses (restored in the destructor).
  TraceContext& ctx = detail::ambient_trace();
  if (ctx.trace_id != 0) {
    trace_id_ = ctx.trace_id;
    parent_span_ = ctx.parent_span;
    span_id_ = next_trace_id();
    ctx.parent_span = span_id_;
  }
  t0_us_ = Trace::now_us();
}

Span::~Span() {
  if (!active_) return;
  const std::int64_t t1 = Trace::now_us();
  --t_depth;
  if (span_id_ != 0) detail::ambient_trace().parent_span = parent_span_;
  // A stop() between open and close still records the event: the span was
  // opened under an enabled trace and its duration is already paid for.
  TraceEvent e;
  e.name = name_;
  e.category = category_;
  e.tid = this_tid();
  e.ts_us = t0_us_;
  e.dur_us = t1 - t0_us_;
  e.depth = depth_;
  e.trace_id = trace_id_;
  e.span_id = span_id_;
  e.parent_span = parent_span_;
  std::lock_guard<std::mutex> lock(g_mu);
  push_locked(std::move(e));
}

}  // namespace dg::obs
