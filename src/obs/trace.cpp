#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <ostream>

namespace dg::obs {

namespace {

std::atomic<bool> g_enabled{false};

std::mutex g_mu;
std::vector<TraceEvent> g_events;
std::chrono::steady_clock::time_point g_epoch;

// Small stable per-thread ids (Chrome renders one track per tid).
std::atomic<std::uint64_t> g_next_tid{1};
thread_local std::uint64_t t_tid = 0;
thread_local int t_depth = 0;

std::uint64_t this_tid() {
  if (t_tid == 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - g_epoch)
      .count();
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

void Trace::start() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_events.clear();
  g_epoch = std::chrono::steady_clock::now();
  g_enabled.store(true, std::memory_order_release);
}

void Trace::stop() { g_enabled.store(false, std::memory_order_release); }

bool Trace::enabled() { return g_enabled.load(std::memory_order_relaxed); }

std::vector<TraceEvent> Trace::events() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_events;
}

void Trace::clear() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_events.clear();
  g_epoch = std::chrono::steady_clock::now();
}

void Trace::write_chrome(std::ostream& os) {
  const std::vector<TraceEvent> evs = events();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : evs) {
    std::string line;
    if (!first) line += ',';
    first = false;
    line += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    line += ",\"ts\":" + std::to_string(e.ts_us);
    line += ",\"dur\":" + std::to_string(e.dur_us);
    line += ",\"name\":";
    append_escaped(line, e.name);
    line += ",\"cat\":";
    append_escaped(line, e.category);
    line += ",\"args\":{\"depth\":" + std::to_string(e.depth) + "}}";
    os << line;
  }
  os << "]}";
}

void Trace::write_jsonl(std::ostream& os) {
  const std::vector<TraceEvent> evs = events();
  for (const TraceEvent& e : evs) {
    std::string line = "{\"name\":";
    append_escaped(line, e.name);
    line += ",\"cat\":";
    append_escaped(line, e.category);
    line += ",\"tid\":" + std::to_string(e.tid);
    line += ",\"ts_us\":" + std::to_string(e.ts_us);
    line += ",\"dur_us\":" + std::to_string(e.dur_us);
    line += ",\"depth\":" + std::to_string(e.depth) + "}";
    os << line << "\n";
  }
}

Span::Span(const char* name, const char* category)
    : name_(name), category_(category) {
  if (!Trace::enabled()) return;
  active_ = true;
  depth_ = t_depth++;
  t0_us_ = now_us();
}

Span::~Span() {
  if (!active_) return;
  const std::int64_t t1 = now_us();
  --t_depth;
  // A stop() between open and close still records the event: the span was
  // opened under an enabled trace and its duration is already paid for.
  TraceEvent e;
  e.name = name_;
  e.category = category_;
  e.tid = this_tid();
  e.ts_us = t0_us_;
  e.dur_us = t1 - t0_us_;
  e.depth = depth_;
  std::lock_guard<std::mutex> lock(g_mu);
  g_events.push_back(std::move(e));
}

}  // namespace dg::obs
