// Trace spans: RAII scoped timers with thread-local span stacks, exported
// as Chrome trace_event JSON (loadable in chrome://tracing / Perfetto) and
// as JSONL (one event per line, for ad-hoc grep/plot pipelines).
//
// Collection is process-wide and off by default: a Span constructed while
// tracing is disabled costs one relaxed atomic load. When enabled, span
// *destruction* appends one complete event (name, category, thread id,
// start, duration, nesting depth) to a central buffer; the thread-local
// depth counter gives correct nesting even when spans open on intra-op
// pool workers (each worker carries its own stack).
//
// The DG_OBS_SPAN macro compiles to nothing when the library is built with
// -DDG_OBS=OFF, so traced hot paths carry zero residue in stripped builds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dg::obs {

struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t tid = 0;    // stable small id per OS thread (1, 2, ...)
  std::int64_t ts_us = 0;   // start, microseconds since trace start
  std::int64_t dur_us = 0;  // wall duration, microseconds
  int depth = 0;            // span-stack depth on its thread at open time
};

/// Process-wide trace collector.
class Trace {
 public:
  /// Clears the buffer and starts collecting. Idempotent.
  static void start();
  static void stop();
  static bool enabled();

  static std::vector<TraceEvent> events();
  static void clear();

  /// Chrome trace_event format: {"traceEvents":[{"ph":"X",...},...]}.
  static void write_chrome(std::ostream& os);
  /// One JSON object per line: {"name":...,"tid":...,"ts_us":...,...}.
  static void write_jsonl(std::ostream& os);
};

/// RAII scoped span. Construct with static strings or short-lived labels;
/// the name is copied only when tracing is enabled.
class Span {
 public:
  explicit Span(const char* name, const char* category = "op");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::int64_t t0_us_ = 0;
  int depth_ = 0;
  bool active_ = false;
};

}  // namespace dg::obs

#ifdef DG_OBS_ENABLED
#define DG_OBS_CONCAT_IMPL(a, b) a##b
#define DG_OBS_CONCAT(a, b) DG_OBS_CONCAT_IMPL(a, b)
#define DG_OBS_SPAN(name, category) \
  ::dg::obs::Span DG_OBS_CONCAT(dg_obs_span_, __LINE__)(name, category)
#else
#define DG_OBS_SPAN(name, category) \
  do {                              \
  } while (0)
#endif
