// Trace spans: RAII scoped timers with thread-local span stacks, exported
// as Chrome trace_event JSON (loadable in chrome://tracing / Perfetto) and
// as JSONL (one event per line, for ad-hoc grep/plot pipelines).
//
// Collection is process-wide and off by default: a Span constructed while
// tracing is disabled costs one relaxed atomic load. When enabled, span
// *destruction* appends one complete event (name, category, thread id,
// start, duration, nesting depth) to a central buffer; the thread-local
// depth counter gives correct nesting even when spans open on intra-op
// pool workers (each worker carries its own stack).
//
// The buffer is a capped ring (DG_OBS_SPAN_CAP, default 64k events): a
// long-lived serving process keeps the most recent spans and counts what
// it overwrote (dropped(), mirrored to the global-registry counter
// obs.trace.dropped_spans) instead of growing without bound.
//
// Distributed tracing rides on top (obs/tracectx.h): when the calling
// thread carries an ambient TraceContext, a Span allocates its own 64-bit
// span id, parents itself under the context, and re-points the ambient
// parent at itself for the spans it lexically encloses. Work that crosses
// threads or processes records spans explicitly via Trace::record() with
// the ids carried alongside the job. Timestamps are microseconds on the
// process-local steady_clock epoch (now_us()); merging buffers from
// several processes requires the epoch-offset handshake the serve tier's
// `clock` op provides.
//
// The DG_OBS_SPAN macro compiles to nothing when the library is built with
// -DDG_OBS=OFF, so traced hot paths carry zero residue in stripped builds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dg::obs {

struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t tid = 0;    // stable small id per OS thread (1, 2, ...)
  std::int64_t ts_us = 0;   // start, microseconds since trace start
  std::int64_t dur_us = 0;  // wall duration, microseconds
  int depth = 0;            // span-stack depth on its thread at open time
  std::uint64_t trace_id = 0;     // distributed-trace identity; 0 = none
  std::uint64_t span_id = 0;      // this span's id within the trace
  std::uint64_t parent_span = 0;  // enclosing span's id; 0 = trace root
};

/// Process-wide trace collector.
class Trace {
 public:
  /// Clears the buffer, re-reads DG_OBS_SPAN_CAP, resets the timestamp
  /// epoch and starts collecting. Idempotent.
  static void start();
  static void stop();
  static bool enabled();

  static std::vector<TraceEvent> events();
  /// Moves the buffered events out (oldest first) WITHOUT touching the
  /// timestamp epoch — the collection path: a fleet trace drains each
  /// process repeatedly and the drained batches must share one timebase.
  static std::vector<TraceEvent> drain();
  static void clear();

  /// Events overwritten since start() because the ring was full.
  static std::uint64_t dropped();

  /// Microseconds since this process's trace epoch — the timebase every
  /// buffered event uses. Callers stamping cross-thread spans (explicit
  /// record()) must take timestamps through this, not their own clocks.
  static std::int64_t now_us();

  /// Appends a fully-formed event (no-op while disabled). For spans whose
  /// open and close happen on different threads or under an explicit
  /// TraceContext; e.tid of 0 is replaced with the calling thread's id.
  static void record(TraceEvent e);

  /// Chrome trace_event format: {"traceEvents":[{"ph":"X",...},...]}.
  static void write_chrome(std::ostream& os);
  /// One JSON object per line: {"name":...,"tid":...,"ts_us":...,...}.
  static void write_jsonl(std::ostream& os);
};

/// RAII scoped span. Construct with static strings or short-lived labels;
/// the name is copied only when tracing is enabled.
class Span {
 public:
  explicit Span(const char* name, const char* category = "op");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Nonzero only when the span opened under an ambient TraceContext;
  /// the value to propagate as `parent_span` to work this span spawns.
  std::uint64_t span_id() const { return span_id_; }

 private:
  const char* name_;
  const char* category_;
  std::int64_t t0_us_ = 0;
  int depth_ = 0;
  bool active_ = false;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_ = 0;
};

}  // namespace dg::obs

#ifdef DG_OBS_ENABLED
#define DG_OBS_CONCAT_IMPL(a, b) a##b
#define DG_OBS_CONCAT(a, b) DG_OBS_CONCAT_IMPL(a, b)
#define DG_OBS_SPAN(name, category) \
  ::dg::obs::Span DG_OBS_CONCAT(dg_obs_span_, __LINE__)(name, category)
#else
#define DG_OBS_SPAN(name, category) \
  do {                              \
  } while (0)
#endif
