// Trace context: the per-request identity that lets one logical request be
// followed across process boundaries (shard router -> worker -> sampler
// lane). A context is two 64-bit ids — the trace id, shared by every span
// the request touches anywhere in the fleet, and the parent span id, the
// innermost open span on the propagating side — plus an implicit sampling
// decision (trace_id == 0 means "not sampled": every hot path checks that
// single word and does no tracing work).
//
// Propagation has two forms:
//  * In-process, same thread: an ambient thread-local context. TraceScope
//    installs a context for a lexical region; Span (obs/trace.h) reads it,
//    allocates its own span id, and re-points the ambient parent at itself
//    so nested spans chain correctly.
//  * Cross-process / cross-thread: the context travels explicitly (a
//    `trace` JSON field on the wire, a TraceContext member on a queued
//    job), and spans are recorded with Trace::record() carrying the ids.
//
// Ids are process-salted (pid + startup clock mixed through splitmix64) so
// two workers can never mint the same id, which is what makes the merged
// fleet trace unambiguous.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dg::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;     // 0 = not sampled / no context
  std::uint64_t parent_span = 0;  // innermost open span on the sender

  bool sampled() const { return trace_id != 0; }
};

/// Process-unique, never-zero 64-bit id (span ids and trace ids share the
/// same generator — uniqueness matters, the namespaces do not).
std::uint64_t next_trace_id();

/// Fixed-width lowercase hex (16 digits), the wire/display form of an id.
/// 64-bit ids do not survive a JSON double round-trip, hex strings do.
std::string trace_id_hex(std::uint64_t id);

/// Inverse of trace_id_hex (an optional "0x" prefix is accepted).
/// Returns 0 on malformed input — indistinguishable from "absent", which
/// is the correct failure mode for an optional field.
std::uint64_t trace_id_from_hex(std::string_view s);

/// The calling thread's ambient context (zero when none is installed).
TraceContext current_trace();

/// RAII: installs `ctx` as the calling thread's ambient context, restoring
/// the previous one on destruction. Spans opened inside the scope attach
/// to ctx.trace_id with ctx.parent_span as their initial parent.
class TraceScope {
 public:
  explicit TraceScope(TraceContext ctx);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext prev_;
};

namespace detail {
/// The mutable thread-local slot behind current_trace()/TraceScope; Span
/// uses it to re-parent nested spans. Not for use outside dg::obs.
TraceContext& ambient_trace();
}  // namespace detail

}  // namespace dg::obs
