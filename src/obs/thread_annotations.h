// Clang thread-safety annotations plus an annotated mutex wrapper.
//
// libstdc++'s std::mutex carries no capability attributes, so clang's
// -Wthread-safety analysis cannot check code that locks one directly. The
// `Mutex` / `MutexLock` pair below wraps std::mutex with the canonical
// capability annotations so that lock state becomes statically checkable:
// fields tagged DG_GUARDED_BY(mu_) may only be touched while `mu_` is held,
// helpers tagged DG_REQUIRES(mu_) may only be called with it held, and the
// compiler proves both on every path — a second static net alongside the
// TSan job, which only sees the interleavings a given run happens to hit.
//
// The macros expand to nothing outside clang (GCC builds are unaffected);
// the wrapper itself is a zero-cost veneer over std::mutex either way. CI's
// clang job builds with -Wthread-safety -Werror=thread-safety.
//
// Condition variables: use std::condition_variable_any and wait on the
// MutexLock itself (it is BasicLockable). Spell waits as manual
//     while (!predicate) cv.wait(lock);
// loops — the predicate then sits in the annotated caller where the
// capability is provably held, instead of inside an unannotated lambda the
// analysis would flag. The unlock/relock inside wait() lives in a system
// header, which the analysis does not look into, so from the caller's view
// the capability is held across the call — exactly the contract a
// condition wait provides at the points the caller can observe.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DG_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DG_THREAD_ANNOTATION
#define DG_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

/// Type is a lockable capability (name shows up in diagnostics).
#define DG_CAPABILITY(name) DG_THREAD_ANNOTATION(capability(name))
/// RAII type that acquires at construction and releases at destruction.
#define DG_SCOPED_CAPABILITY DG_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be read or written while holding the given capability.
#define DG_GUARDED_BY(x) DG_THREAD_ANNOTATION(guarded_by(x))
/// Pointee (not the pointer) is guarded by the given capability.
#define DG_PT_GUARDED_BY(x) DG_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function must be called with the capability held (held on exit too).
#define DG_REQUIRES(...) DG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the capability (not held on entry, held on exit).
#define DG_ACQUIRE(...) DG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not on exit).
#define DG_RELEASE(...) DG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define DG_TRY_ACQUIRE(...) \
  DG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard).
#define DG_EXCLUDES(...) DG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Escape hatch: function body is exempt from the analysis.
#define DG_NO_THREAD_SAFETY_ANALYSIS \
  DG_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dg::obs {

/// std::mutex with the capability attributes the analysis needs. Drop-in:
/// same BasicLockable surface, same cost.
class DG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DG_ACQUIRE() { mu_.lock(); }
  void unlock() DG_RELEASE() { mu_.unlock(); }
  bool try_lock() DG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock for Mutex — std::lock_guard with the scoped-capability
/// attribute, plus the lock()/unlock() surface std::condition_variable_any
/// needs to park on it.
class DG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DG_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DG_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // For condition_variable_any::wait(*this) only: the wait releases and
  // re-acquires around the park, so the capability is held whenever the
  // calling frame is actually running.
  void lock() DG_ACQUIRE() { mu_.lock(); }
  void unlock() DG_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace dg::obs
