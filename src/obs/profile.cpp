#include "obs/profile.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>

namespace dg::obs {

namespace {

std::mutex g_mu;
std::map<std::string, OpStats> g_stats;

// Boundary-clock epoch: bumped on start()/clear() so every thread's stale
// thread-local boundary timestamp is discarded lazily (a thread cannot
// reset another thread's TLS).
std::atomic<std::uint64_t> g_epoch{0};
thread_local std::uint64_t t_epoch = 0;
thread_local std::int64_t t_last_boundary_ns = 0;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t elems(Profiler::Dims d) {
  return static_cast<std::uint64_t>(d.first) *
         static_cast<std::uint64_t>(d.second);
}

/// FLOP estimate from the op name and operand shapes. Exact for the dense
/// kernels that dominate training; elementwise ops count one flop per
/// output element; shape/bookkeeping ops count zero.
std::uint64_t estimate_flops(const char* op, const Profiler::Dims* parents,
                             std::size_t n_parents, Profiler::Dims out) {
  if (std::strcmp(op, "matmul") == 0 && n_parents >= 2) {
    return 2 * elems(parents[0]) * static_cast<std::uint64_t>(out.second);
  }
  if (std::strcmp(op, "affine") == 0 && n_parents >= 3) {
    // x*w + b: 2*n*k*m flops for the product, n*m adds for the bias.
    return 2 * elems(parents[0]) * static_cast<std::uint64_t>(out.second) +
           elems(out);
  }
  if (std::strcmp(op, "lstm_gates") == 0 && n_parents >= 5) {
    // x*wx + h*wh + b.
    return 2 * (elems(parents[0]) + elems(parents[2])) *
               static_cast<std::uint64_t>(out.second) +
           2 * elems(out);
  }
  if (std::strcmp(op, "transpose") == 0 || std::strcmp(op, "constant") == 0 ||
      std::strncmp(op, "slice", 5) == 0 || std::strncmp(op, "pad", 3) == 0 ||
      std::strncmp(op, "concat", 6) == 0) {
    return 0;
  }
  return elems(out);  // elementwise / broadcast / reduction: ~1 flop per out
}

}  // namespace

std::atomic<bool>& Profiler::enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

void Profiler::start() {
  clear();
  enabled_flag().store(true, std::memory_order_release);
}

void Profiler::stop() {
  enabled_flag().store(false, std::memory_order_release);
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_stats.clear();
  g_epoch.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, OpStats>> Profiler::snapshot() {
  std::lock_guard<std::mutex> lock(g_mu);
  return {g_stats.begin(), g_stats.end()};
}

void Profiler::note_op(const char* op, const Dims* parents,
                       std::size_t n_parents, Dims out) {
  if (!enabled()) return;
  const std::int64_t now = now_ns();
  const std::uint64_t epoch = g_epoch.load(std::memory_order_relaxed);
  std::int64_t wall = 0;
  if (t_epoch == epoch && t_last_boundary_ns != 0) {
    wall = now - t_last_boundary_ns;
  }
  t_epoch = epoch;
  t_last_boundary_ns = now;

  std::uint64_t bytes = elems(out) * sizeof(float);
  for (std::size_t i = 0; i < n_parents; ++i) bytes += elems(parents[i]) * sizeof(float);
  const std::uint64_t flops = estimate_flops(op, parents, n_parents, out);

  std::lock_guard<std::mutex> lock(g_mu);
  OpStats& s = g_stats[op];
  ++s.calls;
  s.wall_ns += wall > 0 ? static_cast<std::uint64_t>(wall) : 0;
  s.flops += flops;
  s.bytes += bytes;
}

void Profiler::mark() {
  if (!enabled()) return;
  t_epoch = g_epoch.load(std::memory_order_relaxed);
  t_last_boundary_ns = now_ns();
}

void Profiler::record_kernel(const char* name, std::uint64_t wall_ns,
                             std::uint64_t flops, std::uint64_t bytes) {
  if (!enabled()) return;  // also drops timers that straddle a stop()
  std::lock_guard<std::mutex> lock(g_mu);
  OpStats& s = g_stats[std::string("kernel.") + name];
  ++s.calls;
  s.wall_ns += wall_ns;
  s.flops += flops;
  s.bytes += bytes;
}

std::string Profiler::to_json() {
  const auto snap = snapshot();
  std::string out = "{\"ops\":{";
  bool first = true;
  for (const auto& [name, s] : snap) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;  // op names are static identifiers; no escaping needed
    out += "\":{\"calls\":" + std::to_string(s.calls);
    out += ",\"wall_ns\":" + std::to_string(s.wall_ns);
    out += ",\"flops\":" + std::to_string(s.flops);
    out += ",\"bytes\":" + std::to_string(s.bytes) + "}";
  }
  out += "}}";
  return out;
}

KernelTimer::KernelTimer(const char* name, std::uint64_t flops,
                         std::uint64_t bytes)
    : name_(name), flops_(flops), bytes_(bytes) {
  if (!Profiler::enabled()) return;
  active_ = true;
  t0_ns_ = now_ns();
}

KernelTimer::~KernelTimer() {
  if (!active_) return;
  const std::int64_t dt = now_ns() - t0_ns_;
  Profiler::record_kernel(name_, dt > 0 ? static_cast<std::uint64_t>(dt) : 0,
                          flops_, bytes_);
}

}  // namespace dg::obs
