// Training-run instrumentation: a run directory receiving a JSONL metrics
// stream (one object per generator iteration) that `dgcli top` tails live
// and tools/plot_run.py renders.
//
// The per-iteration record carries exactly the diagnostics the paper reads
// its failures from: G/D losses, gradient norms, WGAN-GP penalty magnitude,
// and the "collapse sentinel" — the mean per-feature (max - min) spread of
// the generated batch. A collapsing generator (§4.2's failure signature on
// wide-dynamic-range signals) drives that spread toward zero iterations
// before the losses look suspicious.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

namespace dg::obs {

/// One generator iteration's diagnostics (written as one JSONL object).
struct TrainIterRecord {
  int iter = 0;
  double d_loss = 0.0;
  double aux_loss = 0.0;
  double g_loss = 0.0;
  double gp_penalty = 0.0;   // full-critic GP magnitude, pre-weight
  double g_grad_norm = 0.0;  // L2 over all generator parameter grads
  double d_grad_norm = 0.0;  // L2 over full-critic parameter grads
  double feat_spread = 0.0;  // collapse sentinel: mean per-feature max-min
  double feat_min = 0.0;     // batch-global feature extrema
  double feat_max = 0.0;
  double wall_ms = 0.0;      // this iteration's wall time
};

/// Appends JSONL records to <dir>/metrics.jsonl (the directory is created).
/// Thread-safe; each record is flushed so a live `dgcli top --follow` and a
/// crashed run both see every completed iteration.
class RunLogger {
 public:
  explicit RunLogger(std::string dir);

  void log_iteration(const TrainIterRecord& r);
  /// Arbitrary marker record, e.g. {"event":"fit_start","iterations":400}.
  void log_event(const std::string& json_object_line);

  const std::string& dir() const { return dir_; }
  std::string metrics_path() const;

 private:
  std::string dir_;
  std::mutex mu_;
  std::ofstream out_;
};

}  // namespace dg::obs
