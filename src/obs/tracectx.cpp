#include "obs/tracectx.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>

namespace dg::obs {

namespace {

thread_local TraceContext t_ambient;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t process_salt() {
  static const std::uint64_t salt = [] {
    const auto boot = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return splitmix64(boot ^ (static_cast<std::uint64_t>(::getpid()) << 32));
  }();
  return salt;
}

}  // namespace

std::uint64_t next_trace_id() {
  static std::atomic<std::uint64_t> counter{1};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = splitmix64(process_salt() + n);
  return id == 0 ? 1 : id;  // 0 is the "absent" sentinel
}

std::string trace_id_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf, 16);
}

std::uint64_t trace_id_from_hex(std::string_view s) {
  if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s.remove_prefix(2);
  }
  if (s.empty() || s.size() > 16) return 0;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return 0;
    }
  }
  return v;
}

TraceContext current_trace() { return t_ambient; }

TraceContext& detail::ambient_trace() { return t_ambient; }

TraceScope::TraceScope(TraceContext ctx) : prev_(t_ambient) { t_ambient = ctx; }

TraceScope::~TraceScope() { t_ambient = prev_; }

}  // namespace dg::obs
