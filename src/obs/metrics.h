// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms addressable by name, snapshot-able without stopping writers.
//
// The paper's core findings (mode collapse, the fidelity/privacy trade-off,
// the cost of long LSTM unrolls) are all diagnosed through measurement; this
// registry is the one place those measurements live, shared by the trainer
// (per-iteration loss/grad/collapse telemetry), the serving runtime (request
// counters + latency quantiles) and the autograd anomaly checker.
//
// Concurrency model:
//  * Counter / Gauge writes are single relaxed atomics — safe from any
//    thread, never blocking, cheap enough for per-op hot paths.
//  * Histogram::record takes a per-histogram mutex (the recorded events —
//    request latencies, iteration times — are coarse enough that a short
//    critical section is irrelevant next to the work being measured). All
//    mutex-guarded state is annotated for clang's -Wthread-safety analysis
//    (obs/thread_annotations.h), so a lock-discipline slip is a compile
//    error in the clang CI job, not a latent race.
//  * Registry::snapshot() walks the name map under the registry mutex and
//    reads each metric atomically; writers are never paused.
//
// Quantiles are EXACT over a sliding window: each histogram keeps the last
// `window` raw samples in a ring next to its buckets, and snapshot() sorts a
// copy of the *filled* portion (a partially-filled ring never mixes stale
// slots into the order statistics — the bug the serve latency reservoir
// shipped with). Bucket counts cover the full lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/thread_annotations.h"

namespace dg::obs {

/// Monotonic event count. add() is a relaxed atomic increment.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value (losses, occupancy, pool size). Atomic double.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double get() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

struct HistogramOptions {
  /// Ascending bucket upper bounds; an implicit +inf bucket is appended.
  /// Empty = default_bounds() (exponential, suited to millisecond latencies).
  std::vector<double> bounds;
  /// Raw-sample ring for exact quantiles (0 disables quantiles).
  std::size_t window = 2048;
};

/// Per-bucket slow-request exemplar: the worst sample recorded into that
/// bucket with a distributed-trace id attached, so a red percentile in
/// `dgcli stats` points at a concrete cross-process span tree. The pair is
/// written inside Histogram::record()'s critical section and copied whole
/// by snapshot(), so a (trace, value) pair can never tear.
struct Exemplar {
  std::uint64_t trace_id = 0;  // 0 = this bucket has no exemplar
  double value = 0.0;
};

/// Point-in-time view of one histogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;  // lifetime samples
  double sum = 0.0;
  double min = 0.0;  // lifetime extrema (0 when count == 0)
  double max = 0.0;
  double p50 = 0.0;  // exact over the retained window
  double p90 = 0.0;
  double p99 = 0.0;
  std::size_t window_filled = 0;  // samples the quantiles were computed over
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 entries
  /// Empty, or buckets.size() entries (trace_id == 0 where a bucket has
  /// none). Populated only when at least one sample carried a trace id.
  std::vector<Exemplar> exemplars;
};

/// Exact nearest-rank quantile of an unsorted sample (copies + sorts).
/// q in [0,1]; returns 0 for an empty sample. Exposed for tests: this is
/// the single quantile definition every surface (serve latency, obs
/// snapshots) uses.
double exact_quantile(std::vector<double> values, double q);

class Histogram {
 public:
  explicit Histogram(HistogramOptions opts = {});

  /// Records a sample; a nonzero trace_id additionally offers the sample
  /// as its bucket's exemplar (kept when it is the worst seen there).
  void record(double v, std::uint64_t trace_id = 0);
  HistogramSnapshot snapshot() const;
  void reset();

  /// Default latency-shaped bounds: 0.01ms .. ~1e5ms, x4 per bucket.
  static std::vector<double> default_bounds();

 private:
  mutable Mutex mu_;
  std::vector<double> bounds_;  // immutable after construction
  std::vector<std::uint64_t> buckets_ DG_GUARDED_BY(mu_);  // bounds_.size()+1
  std::uint64_t count_ DG_GUARDED_BY(mu_) = 0;
  double sum_ DG_GUARDED_BY(mu_) = 0.0;
  double min_ DG_GUARDED_BY(mu_) = 0.0;
  double max_ DG_GUARDED_BY(mu_) = 0.0;
  std::size_t window_cap_;  // immutable after construction
  std::vector<double> window_ DG_GUARDED_BY(mu_);  // grows to cap, then ring
  std::size_t pos_ DG_GUARDED_BY(mu_) = 0;  // next overwrite once full
  std::vector<Exemplar> exemplars_ DG_GUARDED_BY(mu_);  // lazily buckets-sized
};

/// Snapshot of a whole registry, ordered by name.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Serializes a snapshot as a JSON object:
///   {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,...}}}
/// This is the one export path shared by the TCP `stats`/`metrics` ops,
/// `dgcli check`, and training-run directories.
std::string to_json(const RegistrySnapshot& snap);

/// Fleet aggregation: folds per-worker snapshots into one (the shard
/// router's `stats`/`metrics` view). Counters and gauges sum by name.
/// Histograms merge exactly for count/sum/min/max and bucket-wise when the
/// parts share bounds; quantiles are then recomputed from the merged bucket
/// CDF (nearest-rank over bucket upper bounds — accurate to bucket
/// resolution, since raw sample windows do not travel between processes).
/// Parts whose bounds disagree contribute count/sum/extrema only, and the
/// merged quantiles fall back to the max of the parts' quantiles (a
/// conservative upper bound). Exemplars merge per-bucket by max value when
/// the parts share bounds (and are dropped on a bounds mismatch — an
/// exemplar's bucket index is meaningless across different bounds).
RegistrySnapshot merge_snapshots(const std::vector<RegistrySnapshot>& parts);

/// Named metrics, created on first use. Metric references stay valid for
/// the registry's lifetime. The process-wide instance (`global()`) carries
/// cross-cutting series (anomaly counters, training gauges); subsystems
/// that must not share state across instances (one GenerationService per
/// test, say) own private registries and export through the same snapshot
/// path.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `opts` applies only on first creation of `name`.
  Histogram& histogram(std::string_view name, HistogramOptions opts = {});

  RegistrySnapshot snapshot() const;
  /// Zeroes every metric (tests). Registered names survive.
  void reset();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      DG_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      DG_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      DG_GUARDED_BY(mu_);
};

}  // namespace dg::obs
