// Kernel/op profiler: attributes wall time, call counts, and FLOP/byte
// estimates per autograd op and per thread-pool kernel.
//
// Two attribution mechanisms feed one table:
//
//  * Op boundaries — nn::make_op calls note_op() as each op's forward value
//    materializes. The eager executor runs ops serially per thread, so the
//    time elapsed since the previous boundary on the same thread IS the
//    op's forward cost (kernel + node bookkeeping). FLOPs/bytes are
//    estimated from the op name and parent/output shapes (exact for
//    matmul/affine/lstm_gates, elementwise counts otherwise). Time between
//    graph bursts (data prep, optimizer copies) is excluded by mark(),
//    which resets the thread's boundary clock.
//
//  * Kernel timers — the threaded kernels in nn/matrix.cpp open an RAII
//    KernelTimer around their parallel region, so "kernel.matmul" rows
//    carry exact wall time (inclusive of pool fan-out/join), independent of
//    the boundary heuristic.
//
// When the profiler is disabled (the default) every hook is one relaxed
// atomic load; when the library is built with -DDG_OBS=OFF the hooks are
// not compiled at all (see DG_OBS_KERNEL_TIMER and the make_op call site).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dg::obs {

struct OpStats {
  std::uint64_t calls = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;
};

class Profiler {
 public:
  /// Clears accumulated stats and starts attribution. Idempotent.
  static void start();
  static void stop();
  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  /// Name-sorted (op rows first-come alphabetical; kernel rows are prefixed
  /// "kernel.").
  static std::vector<std::pair<std::string, OpStats>> snapshot();
  static void clear();

  /// {"ops":{name:{calls,wall_ns,flops,bytes}, ...}}
  static std::string to_json();

  // ---- hooks (called from nn; no-ops unless enabled) ----

  /// Shape of one operand as (rows, cols); used for FLOP/byte estimation.
  using Dims = std::pair<int, int>;

  /// Called by nn::make_op when an op's forward value is ready. `parents`
  /// lists the operand shapes, `out` the result shape.
  static void note_op(const char* op, const Dims* parents, std::size_t n_parents,
                      Dims out);

  /// Excludes the time since the last boundary from attribution (call when
  /// entering a region whose cost is not an op's: data prep, optimizer).
  static void mark();

  /// Exact-wall kernel row (see KernelTimer).
  static void record_kernel(const char* name, std::uint64_t wall_ns,
                            std::uint64_t flops, std::uint64_t bytes);

  static std::atomic<bool>& enabled_flag();
};

/// RAII exact-wall timer for a named kernel. Construction is one relaxed
/// load when the profiler is off.
class KernelTimer {
 public:
  KernelTimer(const char* name, std::uint64_t flops, std::uint64_t bytes);
  ~KernelTimer();
  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

 private:
  const char* name_;
  std::uint64_t flops_;
  std::uint64_t bytes_;
  std::int64_t t0_ns_ = 0;
  bool active_ = false;
};

}  // namespace dg::obs

#ifdef DG_OBS_ENABLED
#define DG_OBS_KERNEL_TIMER(name, flops, bytes) \
  ::dg::obs::KernelTimer dg_obs_kernel_timer_(name, flops, bytes)
#else
#define DG_OBS_KERNEL_TIMER(name, flops, bytes) \
  do {                                          \
  } while (0)
#endif
