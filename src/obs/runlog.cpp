#include "obs/runlog.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace dg::obs {

namespace {

void append_field(std::string& out, const char* key, double v) {
  char buf[48];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "\"%s\":%.9g", key, v);
  } else {
    std::snprintf(buf, sizeof(buf), "\"%s\":null", key);
  }
  out += buf;
  out += ',';
}

}  // namespace

RunLogger::RunLogger(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("RunLogger: cannot create run dir '" + dir_ +
                             "': " + ec.message());
  }
  out_.open(metrics_path(), std::ios::app);
  if (!out_) {
    throw std::runtime_error("RunLogger: cannot open " + metrics_path());
  }
}

std::string RunLogger::metrics_path() const {
  return (std::filesystem::path(dir_) / "metrics.jsonl").string();
}

void RunLogger::log_iteration(const TrainIterRecord& r) {
  std::string line = "{\"iter\":" + std::to_string(r.iter) + ",";
  append_field(line, "d_loss", r.d_loss);
  append_field(line, "aux_loss", r.aux_loss);
  append_field(line, "g_loss", r.g_loss);
  append_field(line, "gp_penalty", r.gp_penalty);
  append_field(line, "g_grad_norm", r.g_grad_norm);
  append_field(line, "d_grad_norm", r.d_grad_norm);
  append_field(line, "feat_spread", r.feat_spread);
  append_field(line, "feat_min", r.feat_min);
  append_field(line, "feat_max", r.feat_max);
  append_field(line, "wall_ms", r.wall_ms);
  line.back() = '}';  // replace the trailing comma
  std::lock_guard<std::mutex> lock(mu_);
  out_ << line << "\n";
  out_.flush();
}

void RunLogger::log_event(const std::string& json_object_line) {
  std::lock_guard<std::mutex> lock(mu_);
  out_ << json_object_line << "\n";
  out_.flush();
}

}  // namespace dg::obs
