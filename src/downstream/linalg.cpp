#include "downstream/linalg.h"

#include <cmath>
#include <stdexcept>

namespace dg::downstream {

nn::Matrix cholesky(const nn::Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("cholesky: not square");
  const int n = a.rows();
  nn::Matrix l(n, n, 0.0f);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double s = a.at(i, j);
      for (int k = 0; k < j; ++k) {
        s -= static_cast<double>(l.at(i, k)) * l.at(j, k);
      }
      if (i == j) {
        if (s <= 0.0) throw std::invalid_argument("cholesky: matrix not SPD");
        l.at(i, i) = static_cast<float>(std::sqrt(s));
      } else {
        l.at(i, j) = static_cast<float>(s / l.at(j, j));
      }
    }
  }
  return l;
}

nn::Matrix solve_spd(const nn::Matrix& a, const nn::Matrix& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("solve_spd: shape mismatch");
  const nn::Matrix l = cholesky(a);
  const int n = a.rows(), m = b.cols();
  // Forward substitution: L y = b.
  nn::Matrix y(n, m);
  for (int c = 0; c < m; ++c) {
    for (int i = 0; i < n; ++i) {
      double s = b.at(i, c);
      for (int k = 0; k < i; ++k) s -= static_cast<double>(l.at(i, k)) * y.at(k, c);
      y.at(i, c) = static_cast<float>(s / l.at(i, i));
    }
  }
  // Back substitution: L^T x = y.
  nn::Matrix x(n, m);
  for (int c = 0; c < m; ++c) {
    for (int i = n - 1; i >= 0; --i) {
      double s = y.at(i, c);
      for (int k = i + 1; k < n; ++k) s -= static_cast<double>(l.at(k, i)) * x.at(k, c);
      x.at(i, c) = static_cast<float>(s / l.at(i, i));
    }
  }
  return x;
}

}  // namespace dg::downstream
