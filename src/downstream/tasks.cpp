#include "downstream/tasks.h"

#include <algorithm>
#include <stdexcept>

#include "data/encoding.h"

namespace dg::downstream {

ClassificationTask make_event_classification(const data::Schema& schema,
                                             const data::Dataset& data,
                                             int attr, int pad_len) {
  const data::FieldSpec& spec = schema.attributes.at(static_cast<size_t>(attr));
  if (spec.type != data::FieldType::Categorical) {
    throw std::invalid_argument("make_event_classification: attr not categorical");
  }
  if (pad_len <= 0) pad_len = schema.max_timesteps;
  const int k = schema.num_features();

  ClassificationTask task;
  task.n_classes = spec.n_categories;
  task.x = nn::Matrix(static_cast<int>(data.size()), pad_len * k, 0.0f);
  task.y.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    const data::Object& o = data[i];
    task.y.push_back(static_cast<int>(o.attributes.at(static_cast<size_t>(attr))));
    const int t_use = std::min(o.length(), pad_len);
    for (int t = 0; t < t_use; ++t) {
      for (int f = 0; f < k; ++f) {
        const data::FieldSpec& fs = schema.features[static_cast<size_t>(f)];
        const float raw = o.features[static_cast<size_t>(t)][static_cast<size_t>(f)];
        const float v = fs.type == data::FieldType::Continuous
                            ? data::scale01(fs, raw)
                            : raw / std::max(1, fs.n_categories - 1);
        task.x.at(static_cast<int>(i), t * k + f) = v;
      }
    }
  }
  return task;
}

ForecastTask make_forecast(const data::Dataset& data, int k, int input_len,
                           int horizon) {
  if (input_len <= 0 || horizon <= 0) {
    throw std::invalid_argument("make_forecast: bad window sizes");
  }
  std::vector<std::vector<float>> usable;
  for (const data::Object& o : data) {
    if (o.length() >= input_len + horizon) usable.push_back(data::feature_column(o, k));
  }
  ForecastTask task;
  task.x = nn::Matrix(static_cast<int>(usable.size()), input_len);
  task.y = nn::Matrix(static_cast<int>(usable.size()), horizon);
  for (size_t i = 0; i < usable.size(); ++i) {
    float mx = 0.0f;
    for (int t = 0; t < input_len; ++t) mx = std::max(mx, usable[i][static_cast<size_t>(t)]);
    const float scale = 1.0f / (mx + 1e-6f);
    for (int t = 0; t < input_len; ++t) {
      task.x.at(static_cast<int>(i), t) = usable[i][static_cast<size_t>(t)] * scale;
    }
    for (int t = 0; t < horizon; ++t) {
      task.y.at(static_cast<int>(i), t) =
          usable[i][static_cast<size_t>(input_len + t)] * scale;
    }
  }
  return task;
}

}  // namespace dg::downstream
