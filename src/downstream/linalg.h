// Small dense solvers for the closed-form regressors (ridge / kernel ridge).
#pragma once

#include "nn/matrix.h"

namespace dg::downstream {

/// Cholesky factorization of a symmetric positive-definite matrix; returns
/// lower-triangular L with A = L L^T. Throws if A is not SPD.
nn::Matrix cholesky(const nn::Matrix& a);

/// Solves A X = B for SPD A via Cholesky (B may have many columns).
nn::Matrix solve_spd(const nn::Matrix& a, const nn::Matrix& b);

}  // namespace dg::downstream
