// The five classifiers of Fig 11 (end-event-type prediction): MLP, Gaussian
// naive Bayes, logistic regression, decision tree, linear SVM. All share one
// interface so benches can rank them (Table 4).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.h"

namespace dg::downstream {

class Classifier {
 public:
  virtual ~Classifier() = default;
  virtual void fit(const nn::Matrix& x, const std::vector<int>& y,
                   int n_classes) = 0;
  virtual std::vector<int> predict(const nn::Matrix& x) const = 0;
  virtual std::string name() const = 0;
};

struct MlpClassifierOptions {
  int hidden_units = 64;
  int hidden_layers = 1;
  int epochs = 60;
  int batch = 64;
  float lr = 1e-3f;
  uint64_t seed = 0;
};
std::unique_ptr<Classifier> make_mlp_classifier(MlpClassifierOptions opt = {});

std::unique_ptr<Classifier> make_naive_bayes();

struct LogisticRegressionOptions {
  int epochs = 80;
  int batch = 64;
  float lr = 5e-3f;
  uint64_t seed = 0;
};
std::unique_ptr<Classifier> make_logistic_regression(
    LogisticRegressionOptions opt = {});

struct DecisionTreeOptions {
  int max_depth = 8;
  int min_samples_leaf = 4;
  int thresholds_per_feature = 12;
};
std::unique_ptr<Classifier> make_decision_tree(DecisionTreeOptions opt = {});

struct LinearSvmOptions {
  int epochs = 250;
  int batch = 64;
  float lr = 1e-2f;
  float l2 = 1e-4f;
  uint64_t seed = 0;
};
std::unique_ptr<Classifier> make_linear_svm(LinearSvmOptions opt = {});

double accuracy(std::span<const int> pred, std::span<const int> truth);

}  // namespace dg::downstream
