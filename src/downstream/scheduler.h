// Cluster-scheduling simulator for the paper's "algorithm design" use case
// (§2.1, task 1): resource-allocation algorithms are tuned on workload data,
// and the key property of synthetic data is that *if scheduler A beats
// scheduler B on the real workload, the same should hold on the generated
// one*. Jobs are derived from task-usage objects (GCUT-like traces); the
// simulator runs M identical machines with non-preemptive policies and
// reports waiting time / slowdown.
#pragma once

#include <string>
#include <vector>

#include "data/types.h"
#include "nn/rng.h"

namespace dg::downstream {

struct Job {
  double arrival = 0.0;
  double duration = 0.0;  ///< service time (epochs)
  double demand = 0.0;    ///< mean resource demand in [0,1] (informational)
};

/// Derives one job per object: duration = series length, demand = mean of
/// feature `k`, arrivals Poisson-ish with the given mean inter-arrival.
std::vector<Job> jobs_from_dataset(const data::Dataset& data, int k,
                                   double mean_interarrival, nn::Rng& rng);

enum class SchedulingPolicy {
  Fifo,               ///< first-come first-served
  ShortestJobFirst,   ///< non-preemptive SJF on known durations
  LargestJobFirst,    ///< worst-case contrast policy
};

std::string policy_name(SchedulingPolicy p);

struct ScheduleMetrics {
  double mean_wait = 0.0;
  double mean_slowdown = 0.0;  ///< (wait + service) / service
  double makespan = 0.0;
};

/// Non-preemptive simulation on `machines` identical servers.
ScheduleMetrics simulate_schedule(std::vector<Job> jobs,
                                  SchedulingPolicy policy, int machines);

}  // namespace dg::downstream
