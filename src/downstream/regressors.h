// The regressors of Fig 27 (WWT forecasting): linear/ridge regression,
// RBF kernel ridge, and MLPs, plus the coefficient of determination R^2.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.h"

namespace dg::downstream {

class Regressor {
 public:
  virtual ~Regressor() = default;
  /// x: [n, d_in], y: [n, d_out] (multi-output supported).
  virtual void fit(const nn::Matrix& x, const nn::Matrix& y) = 0;
  virtual nn::Matrix predict(const nn::Matrix& x) const = 0;
  virtual std::string name() const = 0;
};

std::unique_ptr<Regressor> make_linear_regression(float ridge = 1e-3f);

struct KernelRidgeOptions {
  float gamma = 1.0f;  ///< RBF width: k(a,b) = exp(-gamma * ||a-b||^2 / d)
  float alpha = 1e-2f; ///< ridge strength
};
std::unique_ptr<Regressor> make_kernel_ridge(KernelRidgeOptions opt = {});

struct MlpRegressorOptions {
  int hidden_units = 64;
  int hidden_layers = 1;
  int epochs = 80;
  int batch = 64;
  float lr = 1e-3f;
  uint64_t seed = 0;
  std::string display_name = "MLP";
};
std::unique_ptr<Regressor> make_mlp_regressor(MlpRegressorOptions opt = {});

/// Coefficient of determination, uniformly averaged over output columns.
/// Can be arbitrarily negative for bad fits; 1 is perfect.
double r2_score(const nn::Matrix& truth, const nn::Matrix& pred);

}  // namespace dg::downstream
