#include "downstream/classifiers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/rng.h"

namespace dg::downstream {

namespace {

using nn::Matrix;
using nn::Var;

Matrix onehot(const std::vector<int>& y, int n_classes) {
  Matrix t(static_cast<int>(y.size()), n_classes, 0.0f);
  for (size_t i = 0; i < y.size(); ++i) {
    t.at(static_cast<int>(i), y[i]) = 1.0f;
  }
  return t;
}

Matrix take_rows(const Matrix& x, std::span<const int> idx) {
  Matrix out(static_cast<int>(idx.size()), x.cols());
  for (size_t i = 0; i < idx.size(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      out.at(static_cast<int>(i), j) = x.at(idx[i], j);
    }
  }
  return out;
}

std::vector<int> argmax_rows(const Matrix& scores) {
  std::vector<int> out(static_cast<size_t>(scores.rows()));
  for (int i = 0; i < scores.rows(); ++i) {
    int best = 0;
    for (int j = 1; j < scores.cols(); ++j) {
      if (scores.at(i, j) > scores.at(i, best)) best = j;
    }
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

/// Shared minibatch loop for the gradient-trained classifiers.
template <typename LossFn>
void train_minibatch(const Matrix& x, const std::vector<int>& y, int n_classes,
                     int epochs, int batch, nn::Adam& opt, nn::Rng& rng,
                     const LossFn& loss_fn) {
  const int n = x.rows();
  const int bs = std::min(batch, n);
  for (int e = 0; e < epochs; ++e) {
    auto perm = rng.permutation(n);
    for (int start = 0; start + bs <= n; start += bs) {
      std::span<const int> idx(perm.data() + start, static_cast<size_t>(bs));
      Matrix xb = take_rows(x, idx);
      std::vector<int> yb(static_cast<size_t>(bs));
      for (int i = 0; i < bs; ++i) yb[static_cast<size_t>(i)] = y[static_cast<size_t>(idx[i])];
      Var loss = loss_fn(Var(std::move(xb), false), onehot(yb, n_classes));
      opt.zero_grad();
      loss.backward();
      opt.step();
    }
  }
}

// ------------------------------------------------------------------ MLP

class MlpClassifier final : public Classifier {
 public:
  explicit MlpClassifier(MlpClassifierOptions opt) : opt_(opt) {}

  void fit(const Matrix& x, const std::vector<int>& y, int n_classes) override {
    nn::Rng rng(opt_.seed + 101);
    net_ = nn::Mlp(x.cols(), n_classes, opt_.hidden_units, opt_.hidden_layers,
                   rng);
    nn::Adam opt(net_.parameters(), {.lr = opt_.lr});
    train_minibatch(x, y, n_classes, opt_.epochs, opt_.batch, opt, rng,
                    [&](const Var& xb, const Matrix& t) {
                      return nn::softmax_cross_entropy(net_.forward(xb), t);
                    });
  }

  std::vector<int> predict(const Matrix& x) const override {
    nn::NoGradGuard guard;
    return argmax_rows(net_.forward(Var(x, false)).value());
  }

  std::string name() const override { return "MLP"; }

 private:
  MlpClassifierOptions opt_;
  nn::Mlp net_;
};

// ----------------------------------------------------------- Naive Bayes

class GaussianNaiveBayes final : public Classifier {
 public:
  void fit(const Matrix& x, const std::vector<int>& y, int n_classes) override {
    const int d = x.cols();
    n_classes_ = n_classes;
    mean_ = Matrix(n_classes, d, 0.0f);
    var_ = Matrix(n_classes, d, 0.0f);
    prior_.assign(static_cast<size_t>(n_classes), 0.0);
    std::vector<int> counts(static_cast<size_t>(n_classes), 0);
    for (int i = 0; i < x.rows(); ++i) {
      const int c = y[static_cast<size_t>(i)];
      ++counts[static_cast<size_t>(c)];
      for (int j = 0; j < d; ++j) mean_.at(c, j) += x.at(i, j);
    }
    for (int c = 0; c < n_classes; ++c) {
      const int m = std::max(1, counts[static_cast<size_t>(c)]);
      for (int j = 0; j < d; ++j) mean_.at(c, j) /= static_cast<float>(m);
      prior_[static_cast<size_t>(c)] =
          std::log(std::max(1, counts[static_cast<size_t>(c)]) /
                   static_cast<double>(x.rows()));
    }
    for (int i = 0; i < x.rows(); ++i) {
      const int c = y[static_cast<size_t>(i)];
      for (int j = 0; j < d; ++j) {
        const float dlt = x.at(i, j) - mean_.at(c, j);
        var_.at(c, j) += dlt * dlt;
      }
    }
    for (int c = 0; c < n_classes; ++c) {
      const int m = std::max(1, counts[static_cast<size_t>(c)]);
      for (int j = 0; j < d; ++j) {
        var_.at(c, j) = var_.at(c, j) / static_cast<float>(m) + 1e-4f;
      }
    }
  }

  std::vector<int> predict(const Matrix& x) const override {
    std::vector<int> out(static_cast<size_t>(x.rows()));
    for (int i = 0; i < x.rows(); ++i) {
      double best = -std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (int c = 0; c < n_classes_; ++c) {
        double ll = prior_[static_cast<size_t>(c)];
        for (int j = 0; j < x.cols(); ++j) {
          const double v = var_.at(c, j);
          const double dlt = x.at(i, j) - mean_.at(c, j);
          ll += -0.5 * (std::log(2.0 * M_PI * v) + dlt * dlt / v);
        }
        if (ll > best) {
          best = ll;
          best_c = c;
        }
      }
      out[static_cast<size_t>(i)] = best_c;
    }
    return out;
  }

  std::string name() const override { return "NaiveBayes"; }

 private:
  int n_classes_ = 0;
  Matrix mean_, var_;
  std::vector<double> prior_;
};

// --------------------------------------------------- Logistic regression

class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionOptions opt) : opt_(opt) {}

  void fit(const Matrix& x, const std::vector<int>& y, int n_classes) override {
    nn::Rng rng(opt_.seed + 202);
    net_ = nn::Mlp(x.cols(), n_classes, 0, 0, rng);  // bare linear layer
    nn::Adam opt(net_.parameters(), {.lr = opt_.lr});
    train_minibatch(x, y, n_classes, opt_.epochs, opt_.batch, opt, rng,
                    [&](const Var& xb, const Matrix& t) {
                      return nn::softmax_cross_entropy(net_.forward(xb), t);
                    });
  }

  std::vector<int> predict(const Matrix& x) const override {
    nn::NoGradGuard guard;
    return argmax_rows(net_.forward(Var(x, false)).value());
  }

  std::string name() const override { return "LogisticRegression"; }

 private:
  LogisticRegressionOptions opt_;
  nn::Mlp net_;
};

// --------------------------------------------------------- Decision tree

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeOptions opt) : opt_(opt) {}

  void fit(const Matrix& x, const std::vector<int>& y, int n_classes) override {
    n_classes_ = n_classes;
    nodes_.clear();
    std::vector<int> idx(static_cast<size_t>(x.rows()));
    std::iota(idx.begin(), idx.end(), 0);
    build(x, y, idx, 0);
  }

  std::vector<int> predict(const Matrix& x) const override {
    std::vector<int> out(static_cast<size_t>(x.rows()));
    for (int i = 0; i < x.rows(); ++i) {
      int node = 0;
      while (nodes_[static_cast<size_t>(node)].feature >= 0) {
        const Node& nd = nodes_[static_cast<size_t>(node)];
        node = x.at(i, nd.feature) <= nd.threshold ? nd.left : nd.right;
      }
      out[static_cast<size_t>(i)] = nodes_[static_cast<size_t>(node)].label;
    }
    return out;
  }

  std::string name() const override { return "DecisionTree"; }

 private:
  struct Node {
    int feature = -1;  // -1: leaf
    float threshold = 0.0f;
    int left = -1, right = -1;
    int label = 0;
  };

  double gini(const std::vector<int>& counts, int total) const {
    if (total == 0) return 0.0;
    double g = 1.0;
    for (int c : counts) {
      const double p = c / static_cast<double>(total);
      g -= p * p;
    }
    return g;
  }

  int majority(const std::vector<int>& y, const std::vector<int>& idx) const {
    std::vector<int> counts(static_cast<size_t>(n_classes_), 0);
    for (int i : idx) ++counts[static_cast<size_t>(y[static_cast<size_t>(i)])];
    return static_cast<int>(std::max_element(counts.begin(), counts.end()) -
                            counts.begin());
  }

  int build(const Matrix& x, const std::vector<int>& y,
            const std::vector<int>& idx, int depth) {
    const int me = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_.back().label = majority(y, idx);

    std::vector<int> counts(static_cast<size_t>(n_classes_), 0);
    for (int i : idx) ++counts[static_cast<size_t>(y[static_cast<size_t>(i)])];
    const double node_gini = gini(counts, static_cast<int>(idx.size()));
    if (depth >= opt_.max_depth || node_gini == 0.0 ||
        static_cast<int>(idx.size()) < 2 * opt_.min_samples_leaf) {
      return me;
    }

    // Best split over quantile thresholds per feature.
    int best_f = -1;
    float best_t = 0.0f;
    double best_score = node_gini - 1e-7;
    std::vector<float> vals(idx.size());
    for (int f = 0; f < x.cols(); ++f) {
      for (size_t i = 0; i < idx.size(); ++i) vals[i] = x.at(idx[i], f);
      std::vector<float> sorted = vals;
      std::sort(sorted.begin(), sorted.end());
      if (sorted.front() == sorted.back()) continue;
      for (int q = 1; q <= opt_.thresholds_per_feature; ++q) {
        const float t = sorted[sorted.size() * q /
                               (opt_.thresholds_per_feature + 1)];
        std::vector<int> lc(static_cast<size_t>(n_classes_), 0);
        std::vector<int> rc(static_cast<size_t>(n_classes_), 0);
        int ln = 0, rn = 0;
        for (size_t i = 0; i < idx.size(); ++i) {
          if (vals[i] <= t) {
            ++lc[static_cast<size_t>(y[static_cast<size_t>(idx[i])])];
            ++ln;
          } else {
            ++rc[static_cast<size_t>(y[static_cast<size_t>(idx[i])])];
            ++rn;
          }
        }
        if (ln < opt_.min_samples_leaf || rn < opt_.min_samples_leaf) continue;
        const double score = (ln * gini(lc, ln) + rn * gini(rc, rn)) /
                             static_cast<double>(idx.size());
        if (score < best_score) {
          best_score = score;
          best_f = f;
          best_t = t;
        }
      }
    }
    if (best_f < 0) return me;

    std::vector<int> left, right;
    for (int i : idx) {
      (x.at(i, best_f) <= best_t ? left : right).push_back(i);
    }
    nodes_[static_cast<size_t>(me)].feature = best_f;
    nodes_[static_cast<size_t>(me)].threshold = best_t;
    const int l = build(x, y, left, depth + 1);
    const int r = build(x, y, right, depth + 1);
    nodes_[static_cast<size_t>(me)].left = l;
    nodes_[static_cast<size_t>(me)].right = r;
    return me;
  }

  DecisionTreeOptions opt_;
  int n_classes_ = 0;
  std::vector<Node> nodes_;
};

// ------------------------------------------------------------ Linear SVM

class LinearSvm final : public Classifier {
 public:
  explicit LinearSvm(LinearSvmOptions opt) : opt_(opt) {}

  void fit(const Matrix& x, const std::vector<int>& y, int n_classes) override {
    nn::Rng rng(opt_.seed + 303);
    net_ = nn::Mlp(x.cols(), n_classes, 0, 0, rng);  // linear scores
    nn::Adam opt(net_.parameters(), {.lr = opt_.lr});
    // One-vs-rest squared hinge: mean over samples and classes of
    // max(0, 1 - s*y_pm)^2 where y_pm is +-1, plus L2 on weights.
    train_minibatch(
        x, y, n_classes, opt_.epochs, opt_.batch, opt, rng,
        [&](const Var& xb, const Matrix& t) {
          Var scores = net_.forward(xb);
          Matrix pm(t.rows(), t.cols());
          for (size_t i = 0; i < pm.size(); ++i) {
            pm.data()[i] = t.data()[i] > 0.5f ? 1.0f : -1.0f;
          }
          Var margin = nn::add_scalar(nn::neg(nn::mul(scores, nn::constant(pm))), 1.0f);
          Var hinge = nn::mean(nn::square(nn::relu(margin)));
          Var reg = zeros_like_scalar();
          for (const Var& p : net_.parameters()) {
            reg = nn::add(reg, nn::sum(nn::square(p)));
          }
          return nn::add(hinge, nn::mul_scalar(reg, opt_.l2));
        });
  }

  std::vector<int> predict(const Matrix& x) const override {
    nn::NoGradGuard guard;
    return argmax_rows(net_.forward(Var(x, false)).value());
  }

  std::string name() const override { return "LinearSVM"; }

 private:
  static Var zeros_like_scalar() { return nn::zeros(1, 1); }
  LinearSvmOptions opt_;
  nn::Mlp net_;
};

}  // namespace

std::unique_ptr<Classifier> make_mlp_classifier(MlpClassifierOptions opt) {
  return std::make_unique<MlpClassifier>(opt);
}
std::unique_ptr<Classifier> make_naive_bayes() {
  return std::make_unique<GaussianNaiveBayes>();
}
std::unique_ptr<Classifier> make_logistic_regression(
    LogisticRegressionOptions opt) {
  return std::make_unique<LogisticRegression>(opt);
}
std::unique_ptr<Classifier> make_decision_tree(DecisionTreeOptions opt) {
  return std::make_unique<DecisionTree>(opt);
}
std::unique_ptr<Classifier> make_linear_svm(LinearSvmOptions opt) {
  return std::make_unique<LinearSvm>(opt);
}

double accuracy(std::span<const int> pred, std::span<const int> truth) {
  if (pred.size() != truth.size() || pred.empty()) {
    throw std::invalid_argument("accuracy: size mismatch or empty");
  }
  int hit = 0;
  for (size_t i = 0; i < pred.size(); ++i) hit += (pred[i] == truth[i]);
  return hit / static_cast<double>(pred.size());
}

}  // namespace dg::downstream
