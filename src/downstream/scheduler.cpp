#include "downstream/scheduler.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace dg::downstream {

std::vector<Job> jobs_from_dataset(const data::Dataset& data, int k,
                                   double mean_interarrival, nn::Rng& rng) {
  if (mean_interarrival <= 0) {
    throw std::invalid_argument("jobs_from_dataset: bad inter-arrival");
  }
  std::vector<Job> jobs;
  jobs.reserve(data.size());
  double now = 0.0;
  for (const data::Object& o : data) {
    Job j;
    // Exponential inter-arrivals (memoryless arrival process).
    now += -mean_interarrival * std::log(1.0 - rng.uniform());
    j.arrival = now;
    j.duration = static_cast<double>(o.length());
    double demand = 0.0;
    for (const auto& rec : o.features) demand += rec.at(static_cast<size_t>(k));
    j.demand = demand / o.length();
    jobs.push_back(j);
  }
  return jobs;
}

std::string policy_name(SchedulingPolicy p) {
  switch (p) {
    case SchedulingPolicy::Fifo: return "FIFO";
    case SchedulingPolicy::ShortestJobFirst: return "SJF";
    case SchedulingPolicy::LargestJobFirst: return "LJF";
  }
  return "?";
}

ScheduleMetrics simulate_schedule(std::vector<Job> jobs,
                                  SchedulingPolicy policy, int machines) {
  if (machines <= 0) throw std::invalid_argument("simulate_schedule: machines");
  if (jobs.empty()) return {};
  std::sort(jobs.begin(), jobs.end(),
            [](const Job& a, const Job& b) { return a.arrival < b.arrival; });

  // Machine free times (min-heap).
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int m = 0; m < machines; ++m) free_at.push(0.0);

  // Pending queue ordered by the policy.
  const auto later = [policy](const Job& a, const Job& b) {
    switch (policy) {
      case SchedulingPolicy::Fifo: return a.arrival > b.arrival;
      case SchedulingPolicy::ShortestJobFirst: return a.duration > b.duration;
      case SchedulingPolicy::LargestJobFirst: return a.duration < b.duration;
    }
    return false;
  };
  std::priority_queue<Job, std::vector<Job>, decltype(later)> pending(later);

  ScheduleMetrics metrics;
  size_t next = 0;
  double total_wait = 0.0, total_slowdown = 0.0, makespan = 0.0;
  const size_t n = jobs.size();
  while (next < n || !pending.empty()) {
    // The earliest instant a machine is free.
    const double machine_time = free_at.top();
    if (pending.empty()) {
      // Nothing queued: jump to the next arrival.
      pending.push(jobs[next]);
      const double t = jobs[next].arrival;
      ++next;
      // Pull in everything that arrived by then.
      while (next < n && jobs[next].arrival <= t) pending.push(jobs[next++]);
      continue;
    }
    // Admit arrivals that land before the machine frees up; they compete
    // under the policy order.
    while (next < n && jobs[next].arrival <= machine_time) {
      pending.push(jobs[next++]);
    }
    const Job job = pending.top();
    pending.pop();
    free_at.pop();
    const double start = std::max(machine_time, job.arrival);
    const double finish = start + job.duration;
    free_at.push(finish);
    total_wait += start - job.arrival;
    total_slowdown += (finish - job.arrival) / std::max(1e-9, job.duration);
    makespan = std::max(makespan, finish);
  }
  metrics.mean_wait = total_wait / static_cast<double>(n);
  metrics.mean_slowdown = total_slowdown / static_cast<double>(n);
  metrics.makespan = makespan;
  return metrics;
}

}  // namespace dg::downstream
