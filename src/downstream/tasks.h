// Featurization for the paper's downstream case studies (§5.1.1):
//  - event-type classification on GCUT-like data (Fig 11, Table 4)
//  - page-view forecasting on WWT-like data (Fig 27, Table 4)
#pragma once

#include <vector>

#include "data/types.h"
#include "nn/matrix.h"

namespace dg::downstream {

struct ClassificationTask {
  nn::Matrix x;        // [n, pad_len * K] schema-scaled, zero-padded series
  std::vector<int> y;  // attribute category per object
  int n_classes = 0;
};

/// Predict categorical attribute `attr` from the (padded, [0,1]-scaled)
/// feature time series.
ClassificationTask make_event_classification(const data::Schema& schema,
                                             const data::Dataset& data,
                                             int attr, int pad_len = 0);

struct ForecastTask {
  nn::Matrix x;  // [n, input_len]  per-sample max-normalized history
  nn::Matrix y;  // [n, horizon]    targets on the same scale
};

/// Forecast the next `horizon` points of feature `k` from the first
/// `input_len` points; each series is normalized by its history max.
/// Objects shorter than input_len + horizon are skipped.
ForecastTask make_forecast(const data::Dataset& data, int k, int input_len,
                           int horizon);

}  // namespace dg::downstream
