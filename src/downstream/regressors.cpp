#include "downstream/regressors.h"

#include <cmath>
#include <stdexcept>

#include "downstream/linalg.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/rng.h"

namespace dg::downstream {

namespace {

using nn::Matrix;
using nn::Var;

Matrix with_bias_column(const Matrix& x) {
  Matrix out(x.rows(), x.cols() + 1, 1.0f);
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) out.at(i, j) = x.at(i, j);
  }
  return out;
}

class LinearRegression final : public Regressor {
 public:
  explicit LinearRegression(float ridge) : ridge_(ridge) {}

  void fit(const Matrix& x, const Matrix& y) override {
    const Matrix xb = with_bias_column(x);
    Matrix xtx = nn::matmul(nn::transpose(xb), xb);
    for (int i = 0; i < xtx.rows(); ++i) xtx.at(i, i) += ridge_;
    w_ = solve_spd(xtx, nn::matmul(nn::transpose(xb), y));
  }

  Matrix predict(const Matrix& x) const override {
    return nn::matmul(with_bias_column(x), w_);
  }

  std::string name() const override { return "LinearRegression"; }

 private:
  float ridge_;
  Matrix w_;  // [d+1, d_out]
};

class KernelRidge final : public Regressor {
 public:
  explicit KernelRidge(KernelRidgeOptions opt) : opt_(opt) {}

  void fit(const Matrix& x, const Matrix& y) override {
    train_x_ = x;
    Matrix k = kernel(x, x);
    for (int i = 0; i < k.rows(); ++i) k.at(i, i) += opt_.alpha;
    dual_ = solve_spd(k, y);
  }

  Matrix predict(const Matrix& x) const override {
    return nn::matmul(kernel(x, train_x_), dual_);
  }

  std::string name() const override { return "KernelRidge"; }

 private:
  Matrix kernel(const Matrix& a, const Matrix& b) const {
    const float scale = opt_.gamma / static_cast<float>(a.cols());
    Matrix k(a.rows(), b.rows());
    for (int i = 0; i < a.rows(); ++i) {
      for (int j = 0; j < b.rows(); ++j) {
        double d = 0.0;
        for (int c = 0; c < a.cols(); ++c) {
          const double dlt = a.at(i, c) - b.at(j, c);
          d += dlt * dlt;
        }
        k.at(i, j) = std::exp(-scale * static_cast<float>(d));
      }
    }
    return k;
  }

  KernelRidgeOptions opt_;
  Matrix train_x_;
  Matrix dual_;  // [n_train, d_out]
};

class MlpRegressor final : public Regressor {
 public:
  explicit MlpRegressor(MlpRegressorOptions opt) : opt_(std::move(opt)) {}

  void fit(const Matrix& x, const Matrix& y) override {
    nn::Rng rng(opt_.seed + 404);
    net_ = nn::Mlp(x.cols(), y.cols(), opt_.hidden_units, opt_.hidden_layers, rng);
    nn::Adam adam(net_.parameters(), {.lr = opt_.lr});
    const int n = x.rows();
    const int bs = std::min(opt_.batch, n);
    for (int e = 0; e < opt_.epochs; ++e) {
      auto perm = rng.permutation(n);
      for (int start = 0; start + bs <= n; start += bs) {
        Matrix xb(bs, x.cols()), yb(bs, y.cols());
        for (int i = 0; i < bs; ++i) {
          const int r = perm[static_cast<size_t>(start + i)];
          for (int j = 0; j < x.cols(); ++j) xb.at(i, j) = x.at(r, j);
          for (int j = 0; j < y.cols(); ++j) yb.at(i, j) = y.at(r, j);
        }
        Var loss = nn::mse_loss(net_.forward(Var(std::move(xb), false)), yb);
        adam.zero_grad();
        loss.backward();
        adam.step();
      }
    }
  }

  Matrix predict(const Matrix& x) const override {
    nn::NoGradGuard guard;
    return net_.forward(Var(x, false)).value();
  }

  std::string name() const override { return opt_.display_name; }

 private:
  MlpRegressorOptions opt_;
  nn::Mlp net_;
};

}  // namespace

std::unique_ptr<Regressor> make_linear_regression(float ridge) {
  return std::make_unique<LinearRegression>(ridge);
}

std::unique_ptr<Regressor> make_kernel_ridge(KernelRidgeOptions opt) {
  return std::make_unique<KernelRidge>(opt);
}

std::unique_ptr<Regressor> make_mlp_regressor(MlpRegressorOptions opt) {
  return std::make_unique<MlpRegressor>(std::move(opt));
}

double r2_score(const nn::Matrix& truth, const nn::Matrix& pred) {
  if (!truth.same_shape(pred) || truth.rows() < 2) {
    throw std::invalid_argument("r2_score: shape mismatch or too few rows");
  }
  double total = 0.0;
  for (int j = 0; j < truth.cols(); ++j) {
    double mu = 0.0;
    for (int i = 0; i < truth.rows(); ++i) mu += truth.at(i, j);
    mu /= truth.rows();
    double ss_res = 0.0, ss_tot = 0.0;
    for (int i = 0; i < truth.rows(); ++i) {
      ss_res += (truth.at(i, j) - pred.at(i, j)) * (truth.at(i, j) - pred.at(i, j));
      ss_tot += (truth.at(i, j) - mu) * (truth.at(i, j) - mu);
    }
    total += ss_tot > 1e-12 ? 1.0 - ss_res / ss_tot : (ss_res < 1e-12 ? 1.0 : 0.0);
  }
  return total / truth.cols();
}

}  // namespace dg::downstream
