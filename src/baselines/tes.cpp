// TES-style baseline (Transform-Expand-Sample family, §2.2): for each
// feature it stores the empirical marginal (as a quantile grid) and the
// lag-1 autocorrelation, then generates with a Gaussian-copula AR(1):
//   z_t = rho * z_{t-1} + sqrt(1-rho^2) * eps_t,   x_t = Q(Phi(z_t)).
// Exactly the class of "dynamic stationary process" models the paper argues
// cannot capture long-range or cross-signal structure.
#include <algorithm>
#include <cmath>
#include <optional>

#include "baselines/generator.h"
#include "data/split.h"
#include "nn/rng.h"

namespace dg::baselines {

namespace {

/// Standard normal CDF.
double phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

class Tes final : public Generator {
 public:
  explicit Tes(TesOptions opt) : opt_(opt), rng_(opt.seed + 7005) {}

  void fit(const data::Schema& schema, const data::Dataset& train) override {
    schema_ = schema;
    attr_sampler_.emplace(train);
    length_sampler_.emplace(train);
    const int k = schema.num_features();
    quantiles_.assign(static_cast<size_t>(k), {});
    rho_.assign(static_cast<size_t>(k), 0.0);

    const int use = std::min<int>(opt_.max_train_series,
                                  static_cast<int>(train.size()));
    for (int f = 0; f < k; ++f) {
      std::vector<float> values;
      double num = 0, den = 0, mean = 0;
      long count = 0;
      for (int i = 0; i < use; ++i) {
        for (const auto& rec : train[static_cast<size_t>(i)].features) {
          mean += rec[static_cast<size_t>(f)];
          ++count;
        }
      }
      mean /= std::max<long>(1, count);
      for (int i = 0; i < use; ++i) {
        const auto col = data::feature_column(train[static_cast<size_t>(i)], f);
        for (size_t t = 0; t < col.size(); ++t) {
          values.push_back(col[t]);
          den += (col[t] - mean) * (col[t] - mean);
          if (t + 1 < col.size()) {
            num += (col[t] - mean) * (col[t + 1] - mean);
          }
        }
      }
      rho_[static_cast<size_t>(f)] =
          den > 1e-12 ? std::clamp(num / den, -0.999, 0.999) : 0.0;

      // Quantile grid of the empirical marginal.
      std::sort(values.begin(), values.end());
      auto& q = quantiles_[static_cast<size_t>(f)];
      q.resize(static_cast<size_t>(opt_.quantile_grid));
      for (int g = 0; g < opt_.quantile_grid; ++g) {
        const double u = (g + 0.5) / opt_.quantile_grid;
        q[static_cast<size_t>(g)] =
            values[static_cast<size_t>(u * (values.size() - 1))];
      }
    }
  }

  data::Dataset generate(int n) override {
    data::Dataset out;
    out.reserve(static_cast<size_t>(n));
    const int k = schema_.num_features();
    for (int i = 0; i < n; ++i) {
      data::Object o;
      o.attributes = attr_sampler_->sample(rng_);
      const int len = length_sampler_->sample(rng_);
      std::vector<double> z(static_cast<size_t>(k));
      for (double& v : z) v = rng_.normal();
      for (int t = 0; t < len; ++t) {
        std::vector<float> rec(static_cast<size_t>(k));
        for (int f = 0; f < k; ++f) {
          if (t > 0) {
            const double rho = rho_[static_cast<size_t>(f)];
            z[static_cast<size_t>(f)] =
                rho * z[static_cast<size_t>(f)] +
                std::sqrt(1.0 - rho * rho) * rng_.normal();
          }
          rec[static_cast<size_t>(f)] = quantile(f, phi(z[static_cast<size_t>(f)]));
        }
        o.features.push_back(std::move(rec));
      }
      out.push_back(std::move(o));
    }
    return out;
  }

  std::string name() const override { return "TES"; }

 private:
  float quantile(int f, double u) const {
    const auto& q = quantiles_[static_cast<size_t>(f)];
    const int idx = std::clamp(static_cast<int>(u * opt_.quantile_grid), 0,
                               opt_.quantile_grid - 1);
    return q[static_cast<size_t>(idx)];
  }

  TesOptions opt_;
  nn::Rng rng_;
  data::Schema schema_;
  std::optional<data::EmpiricalAttributeSampler> attr_sampler_;
  std::optional<data::EmpiricalLengthSampler> length_sampler_;
  std::vector<std::vector<float>> quantiles_;
  std::vector<double> rho_;
};

}  // namespace

std::unique_ptr<Generator> make_tes(TesOptions opt) {
  return std::make_unique<Tes>(opt);
}

}  // namespace dg::baselines
