// Nonlinear auto-regressive baseline (§5.0.1): an MLP learns
// R_t = f(A, R_{t-1}, ..., R_{t-p}) plus a generation flag, trained with
// teacher forcing; residual noise (fitted on training data) is injected at
// generation time, and R_1 comes from a fitted Gaussian.
#include <cmath>
#include <optional>

#include "baselines/generator.h"
#include "baselines/series_scaling.h"
#include "data/encoding.h"
#include "data/split.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/rng.h"

namespace dg::baselines {

namespace {

using nn::Matrix;
using nn::Var;

class Ar final : public Generator {
 public:
  explicit Ar(ArOptions opt) : opt_(opt), rng_(opt.seed + 7002) {}

  void fit(const data::Schema& schema, const data::Dataset& train) override {
    schema_ = schema;
    attr_sampler_.emplace(train);
    first_rec_.fit(schema, train);
    k_ = schema.num_features();
    attr_w_ = schema.attribute_dim();
    const int in_dim = attr_w_ + opt_.order * k_;

    nn::Rng init = rng_.fork();
    net_ = nn::Mlp(in_dim, k_ + 2, opt_.hidden_units, opt_.hidden_layers, init);

    // Teacher-forced training pairs.
    const Matrix attrs = data::encode_attributes(schema, train);
    std::vector<std::vector<float>> xs, ys;
    const int use = std::min<int>(opt_.max_train_series,
                                  static_cast<int>(train.size()));
    for (int i = 0; i < use; ++i) {
      const data::Object& o = train[static_cast<size_t>(i)];
      std::vector<std::vector<float>> scaled;
      scaled.reserve(o.features.size());
      for (const auto& r : o.features) {
        scaled.push_back(detail::scale_record(schema, r));
      }
      const int t_len = o.length();
      for (int t = 0; t < t_len; ++t) {
        std::vector<float> x(static_cast<size_t>(attr_w_ + opt_.order * k_), 0.0f);
        for (int j = 0; j < attr_w_; ++j) x[static_cast<size_t>(j)] = attrs.at(i, j);
        for (int lag = 1; lag <= opt_.order; ++lag) {
          if (t - lag < 0) continue;
          for (int d = 0; d < k_; ++d) {
            x[static_cast<size_t>(attr_w_ + (lag - 1) * k_ + d)] =
                scaled[static_cast<size_t>(t - lag)][static_cast<size_t>(d)];
          }
        }
        std::vector<float> y(static_cast<size_t>(k_ + 2), 0.0f);
        for (int d = 0; d < k_; ++d) y[static_cast<size_t>(d)] = scaled[static_cast<size_t>(t)][static_cast<size_t>(d)];
        y[static_cast<size_t>(k_ + (t == t_len - 1 ? 1 : 0))] = 1.0f;
        xs.push_back(std::move(x));
        ys.push_back(std::move(y));
      }
    }

    train_pairs(xs, ys);
    fit_residuals(xs, ys);
  }

  data::Dataset generate(int n) override {
    nn::NoGradGuard guard;
    data::Dataset out;
    out.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      data::Object o;
      o.attributes = attr_sampler_->sample(rng_);
      const Matrix attr_row =
          data::encode_attribute_rows(schema_, {o.attributes});

      std::vector<std::vector<float>> hist;  // scaled, newest last
      hist.push_back(first_rec_.sample(rng_));
      push_record(o, hist.back());
      for (int t = 1; t < schema_.max_timesteps; ++t) {
        Matrix x(1, attr_w_ + opt_.order * k_, 0.0f);
        for (int j = 0; j < attr_w_; ++j) x.at(0, j) = attr_row.at(0, j);
        for (int lag = 1; lag <= opt_.order; ++lag) {
          const int hidx = static_cast<int>(hist.size()) - lag;
          if (hidx < 0) continue;
          for (int d = 0; d < k_; ++d) {
            x.at(0, attr_w_ + (lag - 1) * k_ + d) =
                hist[static_cast<size_t>(hidx)][static_cast<size_t>(d)];
          }
        }
        const Var pred = forward_heads(Var(std::move(x), false));
        std::vector<float> rec(static_cast<size_t>(k_));
        for (int d = 0; d < k_; ++d) {
          rec[static_cast<size_t>(d)] = std::clamp(
              pred.value().at(0, d) +
                  static_cast<float>(rng_.normal(0.0, resid_sd_[static_cast<size_t>(d)])),
              0.0f, 1.0f);
        }
        const bool ended = pred.value().at(0, k_ + 1) > pred.value().at(0, k_);
        hist.push_back(rec);
        push_record(o, rec);
        if (ended) break;
      }
      out.push_back(std::move(o));
    }
    return out;
  }

  std::string name() const override { return "AR"; }

 private:
  Var forward_heads(const Var& x) const {
    const Var raw = net_.forward(x);
    std::vector<Var> parts{nn::sigmoid(nn::slice_cols(raw, 0, k_)),
                           nn::softmax_rows(nn::slice_cols(raw, k_, k_ + 2))};
    return nn::concat_cols(parts);
  }

  void push_record(data::Object& o, const std::vector<float>& scaled) const {
    std::vector<float> raw(static_cast<size_t>(k_));
    for (int d = 0; d < k_; ++d) {
      raw[static_cast<size_t>(d)] =
          detail::unscale_feature(schema_, d, scaled[static_cast<size_t>(d)]);
    }
    o.features.push_back(std::move(raw));
  }

  void train_pairs(const std::vector<std::vector<float>>& xs,
                   const std::vector<std::vector<float>>& ys) {
    nn::Adam opt(net_.parameters(), {.lr = opt_.lr});
    const int n = static_cast<int>(xs.size());
    const int bs = std::min(opt_.batch, n);
    for (int e = 0; e < opt_.epochs; ++e) {
      auto perm = rng_.permutation(n);
      for (int start = 0; start + bs <= n; start += bs) {
        Matrix xb(bs, static_cast<int>(xs[0].size()));
        Matrix yf(bs, k_);
        Matrix yflag(bs, 2);
        for (int i = 0; i < bs; ++i) {
          const auto& x = xs[static_cast<size_t>(perm[static_cast<size_t>(start + i)])];
          const auto& y = ys[static_cast<size_t>(perm[static_cast<size_t>(start + i)])];
          for (size_t j = 0; j < x.size(); ++j) xb.at(i, static_cast<int>(j)) = x[j];
          for (int d = 0; d < k_; ++d) yf.at(i, d) = y[static_cast<size_t>(d)];
          yflag.at(i, 0) = y[static_cast<size_t>(k_)];
          yflag.at(i, 1) = y[static_cast<size_t>(k_ + 1)];
        }
        const Var raw = net_.forward(Var(std::move(xb), false));
        // End flags are rare (one per series); upweight their loss so the
        // termination head does not collapse to "always continue".
        Var loss = nn::add(
            nn::mse_loss(nn::sigmoid(nn::slice_cols(raw, 0, k_)), yf),
            nn::mul_scalar(
                nn::softmax_cross_entropy(nn::slice_cols(raw, k_, k_ + 2), yflag),
                5.0f));
        opt.zero_grad();
        loss.backward();
        opt.step();
      }
    }
  }

  void fit_residuals(const std::vector<std::vector<float>>& xs,
                     const std::vector<std::vector<float>>& ys) {
    nn::NoGradGuard guard;
    resid_sd_.assign(static_cast<size_t>(k_), 0.0);
    const int probe = std::min<int>(2000, static_cast<int>(xs.size()));
    for (int i = 0; i < probe; ++i) {
      Matrix x(1, static_cast<int>(xs[0].size()));
      for (size_t j = 0; j < xs[static_cast<size_t>(i)].size(); ++j) {
        x.at(0, static_cast<int>(j)) = xs[static_cast<size_t>(i)][j];
      }
      const Var pred = forward_heads(Var(std::move(x), false));
      for (int d = 0; d < k_; ++d) {
        const double r = ys[static_cast<size_t>(i)][static_cast<size_t>(d)] -
                         pred.value().at(0, d);
        resid_sd_[static_cast<size_t>(d)] += r * r;
      }
    }
    for (double& v : resid_sd_) v = std::sqrt(v / probe);
  }

  ArOptions opt_;
  nn::Rng rng_;
  data::Schema schema_;
  std::optional<data::EmpiricalAttributeSampler> attr_sampler_;
  detail::FirstRecordGaussian first_rec_;
  nn::Mlp net_;
  std::vector<double> resid_sd_;
  int k_ = 0;
  int attr_w_ = 0;
};

}  // namespace

std::unique_ptr<Generator> make_ar(ArOptions opt) {
  return std::make_unique<Ar>(opt);
}

}  // namespace dg::baselines
