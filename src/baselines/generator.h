// Common interface for the generative baselines of §5.0.1. All of them draw
// attributes from the empirical joint distribution of the training data (as
// the paper prescribes) because none can jointly model attributes+features.
#pragma once

#include <memory>
#include <string>

#include "data/types.h"

namespace dg::baselines {

class Generator {
 public:
  virtual ~Generator() = default;
  virtual void fit(const data::Schema& schema, const data::Dataset& train) = 0;
  virtual data::Dataset generate(int n) = 0;
  virtual std::string name() const = 0;
};

struct HmmOptions {
  int n_states = 8;
  int em_iterations = 15;
  int max_train_series = 200;  ///< Baum-Welch cost cap
  uint64_t seed = 0;
};
std::unique_ptr<Generator> make_hmm(HmmOptions opt = {});

struct ArOptions {
  int order = 3;  ///< p: history length (paper Appendix B uses p = 3)
  int hidden_units = 100;
  int hidden_layers = 2;
  int epochs = 4;
  int batch = 128;
  float lr = 1e-3f;
  int max_train_series = 400;
  uint64_t seed = 0;
};
std::unique_ptr<Generator> make_ar(ArOptions opt = {});

struct RnnOptions {
  int lstm_units = 64;
  int epochs = 6;
  int batch = 32;  ///< series per minibatch
  float lr = 1e-3f;
  int max_train_series = 256;
  uint64_t seed = 0;
};
std::unique_ptr<Generator> make_rnn(RnnOptions opt = {});

struct NaiveGanOptions {
  int noise_dim = 10;
  int hidden = 200;
  int layers = 4;
  float gp_weight = 10.0f;
  float lr = 1e-3f;
  int batch = 50;
  int iterations = 300;
  /// PacGAN-style packing: the critic judges `pack` samples jointly — the
  /// known mode-collapse mitigation the paper reports trying (§4.1.3,
  /// citing Lin et al. [56]). 1 = off.
  int pack = 1;
  uint64_t seed = 0;
};
std::unique_ptr<Generator> make_naive_gan(NaiveGanOptions opt = {});

/// TES-style dynamic stationary process (§2.2, Melamed et al.): per feature,
/// match the empirical marginal distribution and the lag-1 autocorrelation
/// with a Gaussian-copula AR(1). The classical networking-community
/// time-series model the paper discusses as prior art.
struct TesOptions {
  int max_train_series = 400;
  int quantile_grid = 512;  ///< resolution of the stored empirical marginal
  uint64_t seed = 0;
};
std::unique_ptr<Generator> make_tes(TesOptions opt = {});

}  // namespace dg::baselines
