// Gaussian-emission hidden Markov model trained with Baum-Welch (§2.2's
// Markov-model baseline). Attributes come from the empirical sampler; series
// length emerges from per-state termination probabilities — a geometric-ish
// model, which is precisely why HMMs miss bimodal durations (Fig 7/14).
#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "baselines/generator.h"
#include "data/encoding.h"
#include "data/split.h"
#include "nn/rng.h"

namespace dg::baselines {

namespace {

class Hmm final : public Generator {
 public:
  explicit Hmm(HmmOptions opt) : opt_(opt), rng_(opt.seed + 7001) {}

  void fit(const data::Schema& schema, const data::Dataset& train) override {
    schema_ = schema;
    attr_sampler_.emplace(train);
    k_ = schema.num_features();

    // Scaled training series (cap count for Baum-Welch cost).
    std::vector<std::vector<std::vector<double>>> seqs;
    const int use = std::min<int>(opt_.max_train_series,
                                  static_cast<int>(train.size()));
    for (int i = 0; i < use; ++i) seqs.push_back(scale_series(train[i]));

    init_params(seqs);
    for (int it = 0; it < opt_.em_iterations; ++it) em_step(seqs);
  }

  data::Dataset generate(int n) override {
    data::Dataset out;
    out.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      data::Object o;
      o.attributes = attr_sampler_->sample(rng_);
      int state = rng_.categorical(std::span<const double>(pi_));
      for (int t = 0; t < schema_.max_timesteps; ++t) {
        std::vector<float> rec(static_cast<size_t>(k_));
        for (int d = 0; d < k_; ++d) {
          const double v =
              rng_.normal(mu_[idx(state, d)], std::sqrt(var_[idx(state, d)]));
          rec[static_cast<size_t>(d)] = unscale(d, v);
        }
        o.features.push_back(std::move(rec));
        if (t + 1 >= schema_.max_timesteps) break;
        if (rng_.bernoulli(p_end_[static_cast<size_t>(state)])) break;
        state = rng_.categorical(
            std::span<const double>(a_.data() + state * opt_.n_states,
                                    static_cast<size_t>(opt_.n_states)));
      }
      out.push_back(std::move(o));
    }
    return out;
  }

  std::string name() const override { return "HMM"; }

 private:
  size_t idx(int state, int dim) const {
    return static_cast<size_t>(state) * k_ + dim;
  }

  std::vector<std::vector<double>> scale_series(const data::Object& o) const {
    std::vector<std::vector<double>> s;
    s.reserve(o.features.size());
    for (const auto& rec : o.features) {
      std::vector<double> r(static_cast<size_t>(k_));
      for (int d = 0; d < k_; ++d) {
        const data::FieldSpec& f = schema_.features[static_cast<size_t>(d)];
        r[static_cast<size_t>(d)] =
            f.type == data::FieldType::Continuous
                ? data::scale01(f, rec[static_cast<size_t>(d)])
                : rec[static_cast<size_t>(d)] / std::max(1, f.n_categories - 1);
      }
      s.push_back(std::move(r));
    }
    return s;
  }

  float unscale(int d, double v01) const {
    const data::FieldSpec& f = schema_.features[static_cast<size_t>(d)];
    if (f.type == data::FieldType::Continuous) {
      return data::unscale01(f, static_cast<float>(v01));
    }
    const int c = static_cast<int>(std::lround(v01 * (f.n_categories - 1)));
    return static_cast<float>(std::clamp(c, 0, f.n_categories - 1));
  }

  void init_params(const std::vector<std::vector<std::vector<double>>>& seqs) {
    const int s = opt_.n_states;
    pi_.assign(static_cast<size_t>(s), 1.0 / s);
    a_.assign(static_cast<size_t>(s) * s, 1.0 / s);
    mu_.assign(static_cast<size_t>(s) * k_, 0.0);
    var_.assign(static_cast<size_t>(s) * k_, 0.05);
    p_end_.assign(static_cast<size_t>(s), 0.05);
    // Means from random records, jittered.
    for (int st = 0; st < s; ++st) {
      const auto& seq = seqs[rng_.uniform_int(static_cast<int>(seqs.size()))];
      const auto& rec = seq[rng_.uniform_int(static_cast<int>(seq.size()))];
      for (int d = 0; d < k_; ++d) {
        mu_[idx(st, d)] = rec[static_cast<size_t>(d)] + rng_.normal(0.0, 0.02);
      }
    }
  }

  double emission_logp(int state, const std::vector<double>& rec) const {
    double lp = 0.0;
    for (int d = 0; d < k_; ++d) {
      const double v = var_[idx(state, d)];
      const double dlt = rec[static_cast<size_t>(d)] - mu_[idx(state, d)];
      lp += -0.5 * (std::log(2.0 * M_PI * v) + dlt * dlt / v);
    }
    return lp;
  }

  void em_step(const std::vector<std::vector<std::vector<double>>>& seqs) {
    const int s = opt_.n_states;
    std::vector<double> pi_acc(static_cast<size_t>(s), 1e-8);
    std::vector<double> a_acc(static_cast<size_t>(s) * s, 1e-8);
    std::vector<double> mu_acc(static_cast<size_t>(s) * k_, 0.0);
    std::vector<double> m2_acc(static_cast<size_t>(s) * k_, 0.0);
    std::vector<double> g_acc(static_cast<size_t>(s), 1e-8);
    std::vector<double> last_acc(static_cast<size_t>(s), 1e-8);

    for (const auto& seq : seqs) {
      const int t_len = static_cast<int>(seq.size());
      // Emission probabilities, max-normalized per step for stability.
      std::vector<double> b(static_cast<size_t>(t_len) * s);
      for (int t = 0; t < t_len; ++t) {
        double mx = -std::numeric_limits<double>::infinity();
        std::vector<double> lp(static_cast<size_t>(s));
        for (int st = 0; st < s; ++st) {
          lp[static_cast<size_t>(st)] = emission_logp(st, seq[static_cast<size_t>(t)]);
          mx = std::max(mx, lp[static_cast<size_t>(st)]);
        }
        for (int st = 0; st < s; ++st) {
          b[static_cast<size_t>(t) * s + st] =
              std::exp(lp[static_cast<size_t>(st)] - mx) + 1e-300;
        }
      }

      // Scaled forward-backward.
      std::vector<double> alpha(static_cast<size_t>(t_len) * s);
      std::vector<double> beta(static_cast<size_t>(t_len) * s);
      std::vector<double> scale(static_cast<size_t>(t_len));
      for (int st = 0; st < s; ++st) {
        alpha[static_cast<size_t>(st)] = pi_[static_cast<size_t>(st)] * b[static_cast<size_t>(st)];
      }
      scale[0] = 0;
      for (int st = 0; st < s; ++st) scale[0] += alpha[static_cast<size_t>(st)];
      for (int st = 0; st < s; ++st) alpha[static_cast<size_t>(st)] /= scale[0];
      for (int t = 1; t < t_len; ++t) {
        double total = 0;
        for (int j = 0; j < s; ++j) {
          double acc = 0;
          for (int i = 0; i < s; ++i) {
            acc += alpha[static_cast<size_t>(t - 1) * s + i] *
                   a_[static_cast<size_t>(i) * s + j];
          }
          const double v = acc * b[static_cast<size_t>(t) * s + j];
          alpha[static_cast<size_t>(t) * s + j] = v;
          total += v;
        }
        scale[static_cast<size_t>(t)] = total + 1e-300;
        for (int j = 0; j < s; ++j) {
          alpha[static_cast<size_t>(t) * s + j] /= scale[static_cast<size_t>(t)];
        }
      }
      for (int st = 0; st < s; ++st) {
        beta[static_cast<size_t>(t_len - 1) * s + st] = 1.0;
      }
      for (int t = t_len - 2; t >= 0; --t) {
        for (int i = 0; i < s; ++i) {
          double acc = 0;
          for (int j = 0; j < s; ++j) {
            acc += a_[static_cast<size_t>(i) * s + j] *
                   b[static_cast<size_t>(t + 1) * s + j] *
                   beta[static_cast<size_t>(t + 1) * s + j];
          }
          beta[static_cast<size_t>(t) * s + i] = acc / scale[static_cast<size_t>(t + 1)];
        }
      }

      // Accumulate statistics.
      for (int t = 0; t < t_len; ++t) {
        double norm = 0;
        for (int st = 0; st < s; ++st) {
          norm += alpha[static_cast<size_t>(t) * s + st] *
                  beta[static_cast<size_t>(t) * s + st];
        }
        for (int st = 0; st < s; ++st) {
          const double gamma = alpha[static_cast<size_t>(t) * s + st] *
                               beta[static_cast<size_t>(t) * s + st] /
                               (norm + 1e-300);
          if (t == 0) pi_acc[static_cast<size_t>(st)] += gamma;
          if (t == t_len - 1) last_acc[static_cast<size_t>(st)] += gamma;
          g_acc[static_cast<size_t>(st)] += gamma;
          for (int d = 0; d < k_; ++d) {
            const double v = seq[static_cast<size_t>(t)][static_cast<size_t>(d)];
            mu_acc[idx(st, d)] += gamma * v;
            m2_acc[idx(st, d)] += gamma * v * v;
          }
        }
      }
      for (int t = 0; t + 1 < t_len; ++t) {
        double norm = 0;
        std::vector<double> xi(static_cast<size_t>(s) * s);
        for (int i = 0; i < s; ++i) {
          for (int j = 0; j < s; ++j) {
            const double v = alpha[static_cast<size_t>(t) * s + i] *
                             a_[static_cast<size_t>(i) * s + j] *
                             b[static_cast<size_t>(t + 1) * s + j] *
                             beta[static_cast<size_t>(t + 1) * s + j];
            xi[static_cast<size_t>(i) * s + j] = v;
            norm += v;
          }
        }
        for (size_t e = 0; e < xi.size(); ++e) {
          a_acc[e] += xi[e] / (norm + 1e-300);
        }
      }
    }

    // M-step.
    double pi_total = 0;
    for (double v : pi_acc) pi_total += v;
    for (int st = 0; st < s; ++st) {
      pi_[static_cast<size_t>(st)] = pi_acc[static_cast<size_t>(st)] / pi_total;
      double row = 0;
      for (int j = 0; j < s; ++j) row += a_acc[static_cast<size_t>(st) * s + j];
      for (int j = 0; j < s; ++j) {
        a_[static_cast<size_t>(st) * s + j] =
            a_acc[static_cast<size_t>(st) * s + j] / row;
      }
      for (int d = 0; d < k_; ++d) {
        const double g = g_acc[static_cast<size_t>(st)];
        const double mu = mu_acc[idx(st, d)] / g;
        mu_[idx(st, d)] = mu;
        var_[idx(st, d)] = std::max(1e-4, m2_acc[idx(st, d)] / g - mu * mu);
      }
      p_end_[static_cast<size_t>(st)] = std::clamp(
          last_acc[static_cast<size_t>(st)] / g_acc[static_cast<size_t>(st)],
          1e-4, 0.9999);
    }
  }

  HmmOptions opt_;
  nn::Rng rng_;
  data::Schema schema_;
  std::optional<data::EmpiricalAttributeSampler> attr_sampler_;
  int k_ = 0;
  std::vector<double> pi_, a_, mu_, var_, p_end_;
};

}  // namespace

std::unique_ptr<Generator> make_hmm(HmmOptions opt) {
  return std::make_unique<Hmm>(opt);
}

}  // namespace dg::baselines
