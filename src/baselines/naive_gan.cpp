// The "naive GAN" of §3.3: one MLP generator emits the whole flattened
// object (attributes + every timestep, jointly), one MLP critic judges it,
// trained with WGAN-GP. No decoupling, no batched RNN generation, no
// auto-normalization — the architecture whose failures motivate DoppelGANger.
#include <algorithm>
#include <optional>
#include <stdexcept>

#include "baselines/generator.h"
#include "core/output_blocks.h"
#include "core/wgan.h"
#include "data/encoding.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/rng.h"

namespace dg::baselines {

namespace {

using nn::Matrix;
using nn::Var;

class NaiveGan final : public Generator {
 public:
  explicit NaiveGan(NaiveGanOptions opt) : opt_(opt), rng_(opt.seed + 7004) {}

  void fit(const data::Schema& schema, const data::Dataset& train) override {
    codec_.emplace(schema, /*auto_normalize=*/false);
    blocks_ = core::attribute_blocks(schema);
    const auto rec = core::record_blocks(schema, /*autonorm=*/false);
    const auto reps = core::repeat_blocks(rec, schema.max_timesteps);
    blocks_.insert(blocks_.end(), reps.begin(), reps.end());
    const int out_w = core::total_width(blocks_);

    if (opt_.pack < 1) throw std::invalid_argument("NaiveGan: pack must be >= 1");
    nn::Rng init = rng_.fork();
    gen_ = nn::Mlp(opt_.noise_dim, out_w, opt_.hidden, opt_.layers, init);
    // PacGAN packing: the critic sees `pack` samples side by side.
    disc_ = nn::Mlp(out_w * opt_.pack, 1, opt_.hidden, opt_.layers, init);
    nn::Adam g_opt(gen_.parameters(), {.lr = opt_.lr});
    nn::Adam d_opt(disc_.parameters(), {.lr = opt_.lr});

    const data::EncodedDataset enc = codec_->encode(train);
    const int n = static_cast<int>(train.size());
    const core::CriticFn dfn = [this](const Var& x) { return disc_.forward(x); };

    for (int iter = 0; iter < opt_.iterations; ++iter) {
      int b = std::min(opt_.batch, n);
      b -= b % opt_.pack;  // packs must be whole
      if (b < opt_.pack) b = opt_.pack;
      auto idx = rng_.sample_without_replacement(n, std::min(b, n));
      while (static_cast<int>(idx.size()) < b) idx.push_back(idx[0]);
      Matrix real(b, enc.attributes.cols() + enc.features.cols());
      for (int i = 0; i < b; ++i) {
        for (int j = 0; j < enc.attributes.cols(); ++j) {
          real.at(i, j) = enc.attributes.at(idx[static_cast<size_t>(i)], j);
        }
        for (int j = 0; j < enc.features.cols(); ++j) {
          real.at(i, enc.attributes.cols() + j) =
              enc.features.at(idx[static_cast<size_t>(i)], j);
        }
      }

      Matrix fake;
      {
        nn::NoGradGuard guard;
        fake = forward(b).value();
      }
      Var d_loss = core::critic_loss(dfn, packed(real), packed(fake),
                                     opt_.gp_weight, rng_);
      d_opt.zero_grad();
      d_loss.backward();
      d_opt.step();

      Var g_loss = core::generator_loss(dfn, packed_var(forward(b)));
      g_opt.zero_grad();
      g_loss.backward();
      g_opt.step();
    }
  }

  data::Dataset generate(int n) override {
    nn::NoGradGuard guard;
    data::Dataset out;
    out.reserve(static_cast<size_t>(n));
    const int attr_w = codec_->attribute_dim();
    int remaining = n;
    while (remaining > 0) {
      const int b = std::min(remaining, opt_.batch);
      const Matrix flat = forward(b).value();
      const Matrix attrs = nn::slice_cols(flat, 0, attr_w);
      const Matrix feats = nn::slice_cols(flat, attr_w, flat.cols());
      // decode() discards everything past the first end flag (the paper's
      // post-processing for the naive GAN).
      data::Dataset chunk = codec_->decode(attrs, Matrix(b, 0), feats);
      for (auto& o : chunk) out.push_back(std::move(o));
      remaining -= b;
    }
    return out;
  }

  std::string name() const override { return "NaiveGAN"; }

 private:
  Var forward(int b) {
    const Var z = nn::constant(rng_.normal_matrix(b, opt_.noise_dim));
    return core::apply_blocks(gen_.forward(z), blocks_);
  }

  /// Row-major [n,d] -> [n/pack, pack*d] is a pure reshape of the buffer.
  Matrix packed(const Matrix& m) const {
    if (opt_.pack == 1) return m;
    Matrix out(m.rows() / opt_.pack, m.cols() * opt_.pack);
    std::copy(m.flat().begin(), m.flat().end(), out.flat().begin());
    return out;
  }

  /// Differentiable pack: concatenate `pack` row-slices side by side.
  Var packed_var(const Var& v) const {
    if (opt_.pack == 1) return v;
    const int groups = v.rows() / opt_.pack;
    std::vector<Var> parts;
    parts.reserve(static_cast<size_t>(opt_.pack));
    for (int p = 0; p < opt_.pack; ++p) {
      // rows p, p+pack, ... -> contiguous block per pack slot
      parts.push_back(nn::slice_rows(v, p * groups, (p + 1) * groups));
    }
    return nn::concat_cols(parts);
  }

  NaiveGanOptions opt_;
  nn::Rng rng_;
  std::optional<data::GanCodec> codec_;
  std::vector<core::OutputBlock> blocks_;
  nn::Mlp gen_;
  nn::Mlp disc_;
};

}  // namespace

std::unique_ptr<Generator> make_naive_gan(NaiveGanOptions opt) {
  return std::make_unique<NaiveGan>(opt);
}

}  // namespace dg::baselines
