// RNN baseline (§5.0.1): an LSTM trained with teacher forcing to predict the
// next record (plus a generation flag) from the previous one and the
// attributes. Generation is autoregressive and — beyond the Gaussian first
// record — deterministic, which is why it learns over-simplified length and
// mode structure (the paper's observation).
#include <algorithm>
#include <cmath>
#include <optional>

#include "baselines/generator.h"
#include "baselines/series_scaling.h"
#include "data/encoding.h"
#include "data/split.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/rng.h"

namespace dg::baselines {

namespace {

using nn::Matrix;
using nn::Var;

class RnnBaseline final : public Generator {
 public:
  explicit RnnBaseline(RnnOptions opt) : opt_(opt), rng_(opt.seed + 7003) {}

  void fit(const data::Schema& schema, const data::Dataset& train) override {
    schema_ = schema;
    attr_sampler_.emplace(train);
    first_rec_.fit(schema, train);
    k_ = schema.num_features();
    attr_w_ = schema.attribute_dim();

    nn::Rng init = rng_.fork();
    lstm_ = nn::LstmCell(attr_w_ + k_, opt_.lstm_units, init);
    head_ = nn::Mlp(opt_.lstm_units, k_ + 2, opt_.lstm_units, 1, init);

    const int use = std::min<int>(opt_.max_train_series,
                                  static_cast<int>(train.size()));
    const Matrix attrs = data::encode_attributes(schema, train);

    std::vector<Var> params = lstm_.parameters();
    auto hp = head_.parameters();
    params.insert(params.end(), hp.begin(), hp.end());
    nn::Adam opt(params, {.lr = opt_.lr});

    std::vector<int> order(static_cast<size_t>(use));
    for (int i = 0; i < use; ++i) order[static_cast<size_t>(i)] = i;

    for (int e = 0; e < opt_.epochs; ++e) {
      auto perm = rng_.permutation(use);
      for (int start = 0; start < use; start += opt_.batch) {
        const int b = std::min(opt_.batch, use - start);
        std::vector<const data::Object*> batch;
        int t_max = 0;
        Matrix battr(b, attr_w_);
        for (int i = 0; i < b; ++i) {
          const int idx = perm[static_cast<size_t>(start + i)];
          batch.push_back(&train[static_cast<size_t>(idx)]);
          t_max = std::max(t_max, batch.back()->length());
          for (int j = 0; j < attr_w_; ++j) battr.at(i, j) = attrs.at(idx, j);
        }

        // Pre-scale the batch.
        std::vector<std::vector<std::vector<float>>> scaled(
            static_cast<size_t>(b));
        for (int i = 0; i < b; ++i) {
          for (const auto& r : batch[static_cast<size_t>(i)]->features) {
            scaled[static_cast<size_t>(i)].push_back(
                detail::scale_record(schema, r));
          }
        }

        nn::LstmState st = lstm_.initial_state(b);
        Var loss = nn::zeros(1, 1);
        Matrix prev(b, k_, 0.0f);
        float mask_total = 0.0f;
        for (int t = 0; t < t_max; ++t) {
          const Matrix in_prev = prev;
          Matrix target_f(b, k_, 0.0f);
          Matrix target_flag(b, 2, 0.0f);
          Matrix mask(b, 1, 0.0f);
          for (int i = 0; i < b; ++i) {
            const int len = batch[static_cast<size_t>(i)]->length();
            if (t >= len) continue;
            mask.at(i, 0) = 1.0f;
            mask_total += 1.0f;
            for (int d = 0; d < k_; ++d) {
              target_f.at(i, d) =
                  scaled[static_cast<size_t>(i)][static_cast<size_t>(t)]
                        [static_cast<size_t>(d)];
            }
            target_flag.at(i, t == len - 1 ? 1 : 0) = 1.0f;
            for (int d = 0; d < k_; ++d) prev.at(i, d) = target_f.at(i, d);
          }

          const Matrix* parts[] = {&battr, &in_prev};
          st = lstm_.step(nn::constant(nn::concat_cols(parts)), st);
          const Var raw = head_.forward(st.h);
          const Var pf = nn::sigmoid(nn::slice_cols(raw, 0, k_));
          const Var pflag = nn::slice_cols(raw, k_, k_ + 2);

          const Var maskv = nn::constant(mask);
          Var se = nn::sum(nn::mul_colvec(
              nn::square(nn::sub(pf, nn::constant(target_f))), maskv));
          // Masked cross-entropy on the flags.
          Var logp = nn::log_(nn::add_scalar(nn::softmax_rows(pflag), 1e-9f));
          // End flags are rare (one per series); upweight them so the
          // termination head does not collapse to "always continue".
          Var ce = nn::mul_scalar(
              nn::neg(nn::sum(nn::mul_colvec(
                  nn::row_sum(nn::mul(logp, nn::constant(target_flag))), maskv))),
              5.0f);
          loss = nn::add(loss, nn::add(se, ce));
        }
        loss = nn::mul_scalar(loss, 1.0f / std::max(1.0f, mask_total));
        opt.zero_grad();
        loss.backward();
        opt.step();
      }
    }
  }

  data::Dataset generate(int n) override {
    nn::NoGradGuard guard;
    data::Dataset out;
    out.reserve(static_cast<size_t>(n));
    // Batched autoregressive rollout with per-row done flags.
    for (int start = 0; start < n; start += opt_.batch) {
      const int b = std::min(opt_.batch, n - start);
      std::vector<data::Object> objs(static_cast<size_t>(b));
      Matrix battr(b, attr_w_);
      Matrix prev(b, k_, 0.0f);
      std::vector<bool> done(static_cast<size_t>(b), false);
      for (int i = 0; i < b; ++i) {
        objs[static_cast<size_t>(i)].attributes = attr_sampler_->sample(rng_);
        const Matrix row = data::encode_attribute_rows(
            schema_, {objs[static_cast<size_t>(i)].attributes});
        for (int j = 0; j < attr_w_; ++j) battr.at(i, j) = row.at(0, j);
        const auto r1 = first_rec_.sample(rng_);
        for (int d = 0; d < k_; ++d) prev.at(i, d) = r1[static_cast<size_t>(d)];
        push_record(objs[static_cast<size_t>(i)], r1);
      }

      nn::LstmState st = lstm_.initial_state(b);
      for (int t = 1; t < schema_.max_timesteps; ++t) {
        const Matrix* parts[] = {&battr, &prev};
        st = lstm_.step(nn::constant(nn::concat_cols(parts)), st);
        const Var raw = head_.forward(st.h);
        const Var pf = nn::sigmoid(nn::slice_cols(raw, 0, k_));
        const Var pflag = nn::softmax_rows(nn::slice_cols(raw, k_, k_ + 2));
        bool all_done = true;
        for (int i = 0; i < b; ++i) {
          if (done[static_cast<size_t>(i)]) continue;
          std::vector<float> rec(static_cast<size_t>(k_));
          for (int d = 0; d < k_; ++d) {
            rec[static_cast<size_t>(d)] = pf.value().at(i, d);
            prev.at(i, d) = rec[static_cast<size_t>(d)];
          }
          push_record(objs[static_cast<size_t>(i)], rec);
          if (pflag.value().at(i, 1) > pflag.value().at(i, 0)) {
            done[static_cast<size_t>(i)] = true;
          } else {
            all_done = false;
          }
        }
        if (all_done) break;
      }
      for (auto& o : objs) out.push_back(std::move(o));
    }
    return out;
  }

  std::string name() const override { return "RNN"; }

 private:
  void push_record(data::Object& o, const std::vector<float>& scaled) const {
    std::vector<float> raw(static_cast<size_t>(k_));
    for (int d = 0; d < k_; ++d) {
      raw[static_cast<size_t>(d)] =
          detail::unscale_feature(schema_, d, scaled[static_cast<size_t>(d)]);
    }
    o.features.push_back(std::move(raw));
  }

  RnnOptions opt_;
  nn::Rng rng_;
  data::Schema schema_;
  std::optional<data::EmpiricalAttributeSampler> attr_sampler_;
  detail::FirstRecordGaussian first_rec_;
  nn::LstmCell lstm_;
  nn::Mlp head_;
  int k_ = 0;
  int attr_w_ = 0;
};

}  // namespace

std::unique_ptr<Generator> make_rnn(RnnOptions opt) {
  return std::make_unique<RnnBaseline>(opt);
}

}  // namespace dg::baselines
