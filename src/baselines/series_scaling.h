// Internal helpers shared by the sequence baselines: schema-based [0,1]
// scaling of feature records and first-record Gaussian fitting.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/encoding.h"
#include "data/types.h"
#include "nn/rng.h"

namespace dg::baselines::detail {

inline float scale_feature(const data::Schema& schema, int d, float raw) {
  const data::FieldSpec& f = schema.features[static_cast<size_t>(d)];
  if (f.type == data::FieldType::Continuous) return data::scale01(f, raw);
  return raw / std::max(1, f.n_categories - 1);
}

inline float unscale_feature(const data::Schema& schema, int d, float v01) {
  const data::FieldSpec& f = schema.features[static_cast<size_t>(d)];
  if (f.type == data::FieldType::Continuous) {
    return data::unscale01(f, v01);
  }
  const int c = static_cast<int>(std::lround(v01 * (f.n_categories - 1)));
  return static_cast<float>(std::clamp(c, 0, f.n_categories - 1));
}

inline std::vector<float> scale_record(const data::Schema& schema,
                                       const std::vector<float>& rec) {
  std::vector<float> out(rec.size());
  for (size_t d = 0; d < rec.size(); ++d) {
    out[d] = scale_feature(schema, static_cast<int>(d), rec[d]);
  }
  return out;
}

/// Per-dimension mean/std of the first (scaled) record — the paper draws R1
/// from a Gaussian fitted on training data for the AR and RNN baselines.
struct FirstRecordGaussian {
  std::vector<double> mu;
  std::vector<double> sd;

  void fit(const data::Schema& schema, const data::Dataset& train) {
    const size_t k = schema.features.size();
    mu.assign(k, 0.0);
    sd.assign(k, 0.0);
    for (const data::Object& o : train) {
      const auto r = scale_record(schema, o.features.front());
      for (size_t d = 0; d < k; ++d) mu[d] += r[d];
    }
    for (size_t d = 0; d < k; ++d) mu[d] /= static_cast<double>(train.size());
    for (const data::Object& o : train) {
      const auto r = scale_record(schema, o.features.front());
      for (size_t d = 0; d < k; ++d) sd[d] += (r[d] - mu[d]) * (r[d] - mu[d]);
    }
    for (size_t d = 0; d < k; ++d) {
      sd[d] = std::sqrt(sd[d] / static_cast<double>(train.size())) + 1e-4;
    }
  }

  std::vector<float> sample(nn::Rng& rng) const {
    std::vector<float> out(mu.size());
    for (size_t d = 0; d < mu.size(); ++d) {
      out[d] = static_cast<float>(
          std::clamp(rng.normal(mu[d], sd[d]), 0.0, 1.0));
    }
    return out;
  }
};

}  // namespace dg::baselines::detail
