# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_autograd[1]_include.cmake")
include("/root/repo/build/tests/test_layers[1]_include.cmake")
include("/root/repo/build/tests/test_optim[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_downstream[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_privacy[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
