file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_doppelganger.cpp.o"
  "CMakeFiles/test_core.dir/core/test_doppelganger.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_output_blocks.cpp.o"
  "CMakeFiles/test_core.dir/core/test_output_blocks.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_package.cpp.o"
  "CMakeFiles/test_core.dir/core/test_package.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_wgan.cpp.o"
  "CMakeFiles/test_core.dir/core/test_wgan.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
