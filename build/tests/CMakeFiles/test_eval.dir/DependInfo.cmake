
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eval/test_metrics.cpp" "tests/CMakeFiles/test_eval.dir/eval/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_eval.dir/eval/test_metrics.cpp.o.d"
  "/root/repo/tests/eval/test_metrics_property.cpp" "tests/CMakeFiles/test_eval.dir/eval/test_metrics_property.cpp.o" "gcc" "tests/CMakeFiles/test_eval.dir/eval/test_metrics_property.cpp.o.d"
  "/root/repo/tests/eval/test_report.cpp" "tests/CMakeFiles/test_eval.dir/eval/test_report.cpp.o" "gcc" "tests/CMakeFiles/test_eval.dir/eval/test_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/dg_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/dg_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dg_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
