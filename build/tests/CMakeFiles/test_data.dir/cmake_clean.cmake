file(REMOVE_RECURSE
  "CMakeFiles/test_data.dir/data/test_encoding.cpp.o"
  "CMakeFiles/test_data.dir/data/test_encoding.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_encoding_property.cpp.o"
  "CMakeFiles/test_data.dir/data/test_encoding_property.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_split.cpp.o"
  "CMakeFiles/test_data.dir/data/test_split.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_timestamps.cpp.o"
  "CMakeFiles/test_data.dir/data/test_timestamps.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_types.cpp.o"
  "CMakeFiles/test_data.dir/data/test_types.cpp.o.d"
  "test_data"
  "test_data.pdb"
  "test_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
