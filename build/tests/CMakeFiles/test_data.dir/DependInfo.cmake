
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data/test_encoding.cpp" "tests/CMakeFiles/test_data.dir/data/test_encoding.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/test_encoding.cpp.o.d"
  "/root/repo/tests/data/test_encoding_property.cpp" "tests/CMakeFiles/test_data.dir/data/test_encoding_property.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/test_encoding_property.cpp.o.d"
  "/root/repo/tests/data/test_split.cpp" "tests/CMakeFiles/test_data.dir/data/test_split.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/test_split.cpp.o.d"
  "/root/repo/tests/data/test_timestamps.cpp" "tests/CMakeFiles/test_data.dir/data/test_timestamps.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/test_timestamps.cpp.o.d"
  "/root/repo/tests/data/test_types.cpp" "tests/CMakeFiles/test_data.dir/data/test_types.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/test_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/dg_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dg_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
