file(REMOVE_RECURSE
  "CMakeFiles/test_privacy.dir/privacy/test_membership.cpp.o"
  "CMakeFiles/test_privacy.dir/privacy/test_membership.cpp.o.d"
  "CMakeFiles/test_privacy.dir/privacy/test_rdp.cpp.o"
  "CMakeFiles/test_privacy.dir/privacy/test_rdp.cpp.o.d"
  "test_privacy"
  "test_privacy.pdb"
  "test_privacy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
