
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/downstream/test_classifiers.cpp" "tests/CMakeFiles/test_downstream.dir/downstream/test_classifiers.cpp.o" "gcc" "tests/CMakeFiles/test_downstream.dir/downstream/test_classifiers.cpp.o.d"
  "/root/repo/tests/downstream/test_linalg.cpp" "tests/CMakeFiles/test_downstream.dir/downstream/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/test_downstream.dir/downstream/test_linalg.cpp.o.d"
  "/root/repo/tests/downstream/test_regressors.cpp" "tests/CMakeFiles/test_downstream.dir/downstream/test_regressors.cpp.o" "gcc" "tests/CMakeFiles/test_downstream.dir/downstream/test_regressors.cpp.o.d"
  "/root/repo/tests/downstream/test_scheduler.cpp" "tests/CMakeFiles/test_downstream.dir/downstream/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/test_downstream.dir/downstream/test_scheduler.cpp.o.d"
  "/root/repo/tests/downstream/test_tasks.cpp" "tests/CMakeFiles/test_downstream.dir/downstream/test_tasks.cpp.o" "gcc" "tests/CMakeFiles/test_downstream.dir/downstream/test_tasks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/dg_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/downstream/CMakeFiles/dg_downstream.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/dg_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dg_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
