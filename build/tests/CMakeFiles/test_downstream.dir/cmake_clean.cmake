file(REMOVE_RECURSE
  "CMakeFiles/test_downstream.dir/downstream/test_classifiers.cpp.o"
  "CMakeFiles/test_downstream.dir/downstream/test_classifiers.cpp.o.d"
  "CMakeFiles/test_downstream.dir/downstream/test_linalg.cpp.o"
  "CMakeFiles/test_downstream.dir/downstream/test_linalg.cpp.o.d"
  "CMakeFiles/test_downstream.dir/downstream/test_regressors.cpp.o"
  "CMakeFiles/test_downstream.dir/downstream/test_regressors.cpp.o.d"
  "CMakeFiles/test_downstream.dir/downstream/test_scheduler.cpp.o"
  "CMakeFiles/test_downstream.dir/downstream/test_scheduler.cpp.o.d"
  "CMakeFiles/test_downstream.dir/downstream/test_tasks.cpp.o"
  "CMakeFiles/test_downstream.dir/downstream/test_tasks.cpp.o.d"
  "test_downstream"
  "test_downstream.pdb"
  "test_downstream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_downstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
