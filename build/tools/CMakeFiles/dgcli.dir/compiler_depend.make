# Empty compiler generated dependencies file for dgcli.
# This may be replaced when dependencies are built.
