file(REMOVE_RECURSE
  "CMakeFiles/dgcli.dir/dgcli.cpp.o"
  "CMakeFiles/dgcli.dir/dgcli.cpp.o.d"
  "dgcli"
  "dgcli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgcli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
