# Empty compiler generated dependencies file for data_sharing_workflow.
# This may be replaced when dependencies are built.
