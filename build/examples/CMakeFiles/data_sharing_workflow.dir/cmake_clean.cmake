file(REMOVE_RECURSE
  "CMakeFiles/data_sharing_workflow.dir/data_sharing_workflow.cpp.o"
  "CMakeFiles/data_sharing_workflow.dir/data_sharing_workflow.cpp.o.d"
  "data_sharing_workflow"
  "data_sharing_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_sharing_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
