# Empty dependencies file for timestamped_traces.
# This may be replaced when dependencies are built.
