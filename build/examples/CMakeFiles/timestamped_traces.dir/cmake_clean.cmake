file(REMOVE_RECURSE
  "CMakeFiles/timestamped_traces.dir/timestamped_traces.cpp.o"
  "CMakeFiles/timestamped_traces.dir/timestamped_traces.cpp.o.d"
  "timestamped_traces"
  "timestamped_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timestamped_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
