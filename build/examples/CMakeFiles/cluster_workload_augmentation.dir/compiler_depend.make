# Empty compiler generated dependencies file for cluster_workload_augmentation.
# This may be replaced when dependencies are built.
