file(REMOVE_RECURSE
  "CMakeFiles/cluster_workload_augmentation.dir/cluster_workload_augmentation.cpp.o"
  "CMakeFiles/cluster_workload_augmentation.dir/cluster_workload_augmentation.cpp.o.d"
  "cluster_workload_augmentation"
  "cluster_workload_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_workload_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
