# Empty compiler generated dependencies file for dg_data.
# This may be replaced when dependencies are built.
