
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/encoding.cpp" "src/data/CMakeFiles/dg_data.dir/encoding.cpp.o" "gcc" "src/data/CMakeFiles/dg_data.dir/encoding.cpp.o.d"
  "/root/repo/src/data/io.cpp" "src/data/CMakeFiles/dg_data.dir/io.cpp.o" "gcc" "src/data/CMakeFiles/dg_data.dir/io.cpp.o.d"
  "/root/repo/src/data/split.cpp" "src/data/CMakeFiles/dg_data.dir/split.cpp.o" "gcc" "src/data/CMakeFiles/dg_data.dir/split.cpp.o.d"
  "/root/repo/src/data/timestamps.cpp" "src/data/CMakeFiles/dg_data.dir/timestamps.cpp.o" "gcc" "src/data/CMakeFiles/dg_data.dir/timestamps.cpp.o.d"
  "/root/repo/src/data/types.cpp" "src/data/CMakeFiles/dg_data.dir/types.cpp.o" "gcc" "src/data/CMakeFiles/dg_data.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/dg_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
