file(REMOVE_RECURSE
  "libdg_data.a"
)
