file(REMOVE_RECURSE
  "CMakeFiles/dg_data.dir/encoding.cpp.o"
  "CMakeFiles/dg_data.dir/encoding.cpp.o.d"
  "CMakeFiles/dg_data.dir/io.cpp.o"
  "CMakeFiles/dg_data.dir/io.cpp.o.d"
  "CMakeFiles/dg_data.dir/split.cpp.o"
  "CMakeFiles/dg_data.dir/split.cpp.o.d"
  "CMakeFiles/dg_data.dir/timestamps.cpp.o"
  "CMakeFiles/dg_data.dir/timestamps.cpp.o.d"
  "CMakeFiles/dg_data.dir/types.cpp.o"
  "CMakeFiles/dg_data.dir/types.cpp.o.d"
  "libdg_data.a"
  "libdg_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
