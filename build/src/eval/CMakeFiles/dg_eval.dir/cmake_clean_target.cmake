file(REMOVE_RECURSE
  "libdg_eval.a"
)
