# Empty dependencies file for dg_eval.
# This may be replaced when dependencies are built.
