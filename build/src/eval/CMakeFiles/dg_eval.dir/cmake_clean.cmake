file(REMOVE_RECURSE
  "CMakeFiles/dg_eval.dir/metrics.cpp.o"
  "CMakeFiles/dg_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/dg_eval.dir/report.cpp.o"
  "CMakeFiles/dg_eval.dir/report.cpp.o.d"
  "libdg_eval.a"
  "libdg_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
