file(REMOVE_RECURSE
  "CMakeFiles/dg_core.dir/doppelganger.cpp.o"
  "CMakeFiles/dg_core.dir/doppelganger.cpp.o.d"
  "CMakeFiles/dg_core.dir/output_blocks.cpp.o"
  "CMakeFiles/dg_core.dir/output_blocks.cpp.o.d"
  "CMakeFiles/dg_core.dir/package.cpp.o"
  "CMakeFiles/dg_core.dir/package.cpp.o.d"
  "CMakeFiles/dg_core.dir/wgan.cpp.o"
  "CMakeFiles/dg_core.dir/wgan.cpp.o.d"
  "libdg_core.a"
  "libdg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
