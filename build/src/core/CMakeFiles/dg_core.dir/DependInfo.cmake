
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/doppelganger.cpp" "src/core/CMakeFiles/dg_core.dir/doppelganger.cpp.o" "gcc" "src/core/CMakeFiles/dg_core.dir/doppelganger.cpp.o.d"
  "/root/repo/src/core/output_blocks.cpp" "src/core/CMakeFiles/dg_core.dir/output_blocks.cpp.o" "gcc" "src/core/CMakeFiles/dg_core.dir/output_blocks.cpp.o.d"
  "/root/repo/src/core/package.cpp" "src/core/CMakeFiles/dg_core.dir/package.cpp.o" "gcc" "src/core/CMakeFiles/dg_core.dir/package.cpp.o.d"
  "/root/repo/src/core/wgan.cpp" "src/core/CMakeFiles/dg_core.dir/wgan.cpp.o" "gcc" "src/core/CMakeFiles/dg_core.dir/wgan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/dg_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dg_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
