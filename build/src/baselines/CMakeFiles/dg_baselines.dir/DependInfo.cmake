
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ar.cpp" "src/baselines/CMakeFiles/dg_baselines.dir/ar.cpp.o" "gcc" "src/baselines/CMakeFiles/dg_baselines.dir/ar.cpp.o.d"
  "/root/repo/src/baselines/hmm.cpp" "src/baselines/CMakeFiles/dg_baselines.dir/hmm.cpp.o" "gcc" "src/baselines/CMakeFiles/dg_baselines.dir/hmm.cpp.o.d"
  "/root/repo/src/baselines/naive_gan.cpp" "src/baselines/CMakeFiles/dg_baselines.dir/naive_gan.cpp.o" "gcc" "src/baselines/CMakeFiles/dg_baselines.dir/naive_gan.cpp.o.d"
  "/root/repo/src/baselines/rnn.cpp" "src/baselines/CMakeFiles/dg_baselines.dir/rnn.cpp.o" "gcc" "src/baselines/CMakeFiles/dg_baselines.dir/rnn.cpp.o.d"
  "/root/repo/src/baselines/tes.cpp" "src/baselines/CMakeFiles/dg_baselines.dir/tes.cpp.o" "gcc" "src/baselines/CMakeFiles/dg_baselines.dir/tes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/dg_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dg_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dg_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
