file(REMOVE_RECURSE
  "libdg_baselines.a"
)
