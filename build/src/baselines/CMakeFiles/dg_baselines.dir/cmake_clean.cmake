file(REMOVE_RECURSE
  "CMakeFiles/dg_baselines.dir/ar.cpp.o"
  "CMakeFiles/dg_baselines.dir/ar.cpp.o.d"
  "CMakeFiles/dg_baselines.dir/hmm.cpp.o"
  "CMakeFiles/dg_baselines.dir/hmm.cpp.o.d"
  "CMakeFiles/dg_baselines.dir/naive_gan.cpp.o"
  "CMakeFiles/dg_baselines.dir/naive_gan.cpp.o.d"
  "CMakeFiles/dg_baselines.dir/rnn.cpp.o"
  "CMakeFiles/dg_baselines.dir/rnn.cpp.o.d"
  "CMakeFiles/dg_baselines.dir/tes.cpp.o"
  "CMakeFiles/dg_baselines.dir/tes.cpp.o.d"
  "libdg_baselines.a"
  "libdg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
