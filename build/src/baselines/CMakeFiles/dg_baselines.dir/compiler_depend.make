# Empty compiler generated dependencies file for dg_baselines.
# This may be replaced when dependencies are built.
