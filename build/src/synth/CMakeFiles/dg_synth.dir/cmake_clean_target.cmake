file(REMOVE_RECURSE
  "libdg_synth.a"
)
