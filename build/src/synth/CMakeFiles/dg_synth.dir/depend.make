# Empty dependencies file for dg_synth.
# This may be replaced when dependencies are built.
