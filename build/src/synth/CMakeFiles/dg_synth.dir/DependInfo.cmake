
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/flows.cpp" "src/synth/CMakeFiles/dg_synth.dir/flows.cpp.o" "gcc" "src/synth/CMakeFiles/dg_synth.dir/flows.cpp.o.d"
  "/root/repo/src/synth/gcut.cpp" "src/synth/CMakeFiles/dg_synth.dir/gcut.cpp.o" "gcc" "src/synth/CMakeFiles/dg_synth.dir/gcut.cpp.o.d"
  "/root/repo/src/synth/mba.cpp" "src/synth/CMakeFiles/dg_synth.dir/mba.cpp.o" "gcc" "src/synth/CMakeFiles/dg_synth.dir/mba.cpp.o.d"
  "/root/repo/src/synth/wwt.cpp" "src/synth/CMakeFiles/dg_synth.dir/wwt.cpp.o" "gcc" "src/synth/CMakeFiles/dg_synth.dir/wwt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/dg_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dg_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
