file(REMOVE_RECURSE
  "CMakeFiles/dg_synth.dir/flows.cpp.o"
  "CMakeFiles/dg_synth.dir/flows.cpp.o.d"
  "CMakeFiles/dg_synth.dir/gcut.cpp.o"
  "CMakeFiles/dg_synth.dir/gcut.cpp.o.d"
  "CMakeFiles/dg_synth.dir/mba.cpp.o"
  "CMakeFiles/dg_synth.dir/mba.cpp.o.d"
  "CMakeFiles/dg_synth.dir/wwt.cpp.o"
  "CMakeFiles/dg_synth.dir/wwt.cpp.o.d"
  "libdg_synth.a"
  "libdg_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
