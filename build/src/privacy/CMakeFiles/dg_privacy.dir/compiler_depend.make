# Empty compiler generated dependencies file for dg_privacy.
# This may be replaced when dependencies are built.
