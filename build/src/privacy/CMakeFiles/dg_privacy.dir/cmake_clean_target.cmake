file(REMOVE_RECURSE
  "libdg_privacy.a"
)
