
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/membership.cpp" "src/privacy/CMakeFiles/dg_privacy.dir/membership.cpp.o" "gcc" "src/privacy/CMakeFiles/dg_privacy.dir/membership.cpp.o.d"
  "/root/repo/src/privacy/rdp_accountant.cpp" "src/privacy/CMakeFiles/dg_privacy.dir/rdp_accountant.cpp.o" "gcc" "src/privacy/CMakeFiles/dg_privacy.dir/rdp_accountant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/dg_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dg_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
