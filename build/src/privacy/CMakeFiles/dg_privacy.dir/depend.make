# Empty dependencies file for dg_privacy.
# This may be replaced when dependencies are built.
