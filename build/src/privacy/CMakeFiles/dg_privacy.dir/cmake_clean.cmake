file(REMOVE_RECURSE
  "CMakeFiles/dg_privacy.dir/membership.cpp.o"
  "CMakeFiles/dg_privacy.dir/membership.cpp.o.d"
  "CMakeFiles/dg_privacy.dir/rdp_accountant.cpp.o"
  "CMakeFiles/dg_privacy.dir/rdp_accountant.cpp.o.d"
  "libdg_privacy.a"
  "libdg_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
