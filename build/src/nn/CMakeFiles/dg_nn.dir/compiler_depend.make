# Empty compiler generated dependencies file for dg_nn.
# This may be replaced when dependencies are built.
