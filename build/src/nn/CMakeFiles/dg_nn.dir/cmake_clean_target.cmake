file(REMOVE_RECURSE
  "libdg_nn.a"
)
