file(REMOVE_RECURSE
  "CMakeFiles/dg_nn.dir/autograd.cpp.o"
  "CMakeFiles/dg_nn.dir/autograd.cpp.o.d"
  "CMakeFiles/dg_nn.dir/layers.cpp.o"
  "CMakeFiles/dg_nn.dir/layers.cpp.o.d"
  "CMakeFiles/dg_nn.dir/matrix.cpp.o"
  "CMakeFiles/dg_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/dg_nn.dir/optim.cpp.o"
  "CMakeFiles/dg_nn.dir/optim.cpp.o.d"
  "CMakeFiles/dg_nn.dir/rng.cpp.o"
  "CMakeFiles/dg_nn.dir/rng.cpp.o.d"
  "CMakeFiles/dg_nn.dir/serialize.cpp.o"
  "CMakeFiles/dg_nn.dir/serialize.cpp.o.d"
  "libdg_nn.a"
  "libdg_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
