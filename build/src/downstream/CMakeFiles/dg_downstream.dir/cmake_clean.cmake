file(REMOVE_RECURSE
  "CMakeFiles/dg_downstream.dir/classifiers.cpp.o"
  "CMakeFiles/dg_downstream.dir/classifiers.cpp.o.d"
  "CMakeFiles/dg_downstream.dir/linalg.cpp.o"
  "CMakeFiles/dg_downstream.dir/linalg.cpp.o.d"
  "CMakeFiles/dg_downstream.dir/regressors.cpp.o"
  "CMakeFiles/dg_downstream.dir/regressors.cpp.o.d"
  "CMakeFiles/dg_downstream.dir/scheduler.cpp.o"
  "CMakeFiles/dg_downstream.dir/scheduler.cpp.o.d"
  "CMakeFiles/dg_downstream.dir/tasks.cpp.o"
  "CMakeFiles/dg_downstream.dir/tasks.cpp.o.d"
  "libdg_downstream.a"
  "libdg_downstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_downstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
