# Empty dependencies file for dg_downstream.
# This may be replaced when dependencies are built.
