
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/downstream/classifiers.cpp" "src/downstream/CMakeFiles/dg_downstream.dir/classifiers.cpp.o" "gcc" "src/downstream/CMakeFiles/dg_downstream.dir/classifiers.cpp.o.d"
  "/root/repo/src/downstream/linalg.cpp" "src/downstream/CMakeFiles/dg_downstream.dir/linalg.cpp.o" "gcc" "src/downstream/CMakeFiles/dg_downstream.dir/linalg.cpp.o.d"
  "/root/repo/src/downstream/regressors.cpp" "src/downstream/CMakeFiles/dg_downstream.dir/regressors.cpp.o" "gcc" "src/downstream/CMakeFiles/dg_downstream.dir/regressors.cpp.o.d"
  "/root/repo/src/downstream/scheduler.cpp" "src/downstream/CMakeFiles/dg_downstream.dir/scheduler.cpp.o" "gcc" "src/downstream/CMakeFiles/dg_downstream.dir/scheduler.cpp.o.d"
  "/root/repo/src/downstream/tasks.cpp" "src/downstream/CMakeFiles/dg_downstream.dir/tasks.cpp.o" "gcc" "src/downstream/CMakeFiles/dg_downstream.dir/tasks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/dg_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dg_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
