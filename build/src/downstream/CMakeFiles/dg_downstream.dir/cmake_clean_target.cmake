file(REMOVE_RECURSE
  "libdg_downstream.a"
)
