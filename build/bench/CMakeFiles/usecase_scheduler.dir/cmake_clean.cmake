file(REMOVE_RECURSE
  "CMakeFiles/usecase_scheduler.dir/usecase_scheduler.cpp.o"
  "CMakeFiles/usecase_scheduler.dir/usecase_scheduler.cpp.o.d"
  "usecase_scheduler"
  "usecase_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usecase_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
