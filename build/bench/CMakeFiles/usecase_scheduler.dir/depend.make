# Empty dependencies file for usecase_scheduler.
# This may be replaced when dependencies are built.
