file(REMOVE_RECURSE
  "CMakeFiles/ext_flow_traces.dir/ext_flow_traces.cpp.o"
  "CMakeFiles/ext_flow_traces.dir/ext_flow_traces.cpp.o.d"
  "ext_flow_traces"
  "ext_flow_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_flow_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
