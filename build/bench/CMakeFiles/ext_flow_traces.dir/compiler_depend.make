# Empty compiler generated dependencies file for ext_flow_traces.
# This may be replaced when dependencies are built.
