# Empty dependencies file for fig34_aux_discriminator.
# This may be replaced when dependencies are built.
