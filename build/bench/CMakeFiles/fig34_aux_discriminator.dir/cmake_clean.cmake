file(REMOVE_RECURSE
  "CMakeFiles/fig34_aux_discriminator.dir/fig34_aux_discriminator.cpp.o"
  "CMakeFiles/fig34_aux_discriminator.dir/fig34_aux_discriminator.cpp.o.d"
  "fig34_aux_discriminator"
  "fig34_aux_discriminator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig34_aux_discriminator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
