# Empty dependencies file for fig11_event_prediction.
# This may be replaced when dependencies are built.
