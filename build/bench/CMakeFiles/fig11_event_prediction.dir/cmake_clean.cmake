file(REMOVE_RECURSE
  "CMakeFiles/fig11_event_prediction.dir/fig11_event_prediction.cpp.o"
  "CMakeFiles/fig11_event_prediction.dir/fig11_event_prediction.cpp.o.d"
  "fig11_event_prediction"
  "fig11_event_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_event_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
