# Empty dependencies file for fig12_membership_inference.
# This may be replaced when dependencies are built.
