file(REMOVE_RECURSE
  "CMakeFiles/fig12_membership_inference.dir/fig12_membership_inference.cpp.o"
  "CMakeFiles/fig12_membership_inference.dir/fig12_membership_inference.cpp.o.d"
  "fig12_membership_inference"
  "fig12_membership_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_membership_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
