# Empty compiler generated dependencies file for fig05_autonorm.
# This may be replaced when dependencies are built.
