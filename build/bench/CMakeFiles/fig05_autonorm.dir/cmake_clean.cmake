file(REMOVE_RECURSE
  "CMakeFiles/fig05_autonorm.dir/fig05_autonorm.cpp.o"
  "CMakeFiles/fig05_autonorm.dir/fig05_autonorm.cpp.o.d"
  "fig05_autonorm"
  "fig05_autonorm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_autonorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
