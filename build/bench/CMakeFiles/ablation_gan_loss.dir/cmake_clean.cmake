file(REMOVE_RECURSE
  "CMakeFiles/ablation_gan_loss.dir/ablation_gan_loss.cpp.o"
  "CMakeFiles/ablation_gan_loss.dir/ablation_gan_loss.cpp.o.d"
  "ablation_gan_loss"
  "ablation_gan_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gan_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
