# Empty compiler generated dependencies file for fig07_task_duration.
# This may be replaced when dependencies are built.
