file(REMOVE_RECURSE
  "CMakeFiles/fig07_task_duration.dir/fig07_task_duration.cpp.o"
  "CMakeFiles/fig07_task_duration.dir/fig07_task_duration.cpp.o.d"
  "fig07_task_duration"
  "fig07_task_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_task_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
