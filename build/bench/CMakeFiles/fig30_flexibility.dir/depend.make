# Empty dependencies file for fig30_flexibility.
# This may be replaced when dependencies are built.
