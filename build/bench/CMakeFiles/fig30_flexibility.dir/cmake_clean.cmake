file(REMOVE_RECURSE
  "CMakeFiles/fig30_flexibility.dir/fig30_flexibility.cpp.o"
  "CMakeFiles/fig30_flexibility.dir/fig30_flexibility.cpp.o.d"
  "fig30_flexibility"
  "fig30_flexibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig30_flexibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
