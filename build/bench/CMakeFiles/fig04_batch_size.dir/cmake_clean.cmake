file(REMOVE_RECURSE
  "CMakeFiles/fig04_batch_size.dir/fig04_batch_size.cpp.o"
  "CMakeFiles/fig04_batch_size.dir/fig04_batch_size.cpp.o.d"
  "fig04_batch_size"
  "fig04_batch_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_batch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
