# Empty dependencies file for table03_bandwidth.
# This may be replaced when dependencies are built.
