file(REMOVE_RECURSE
  "CMakeFiles/table03_bandwidth.dir/table03_bandwidth.cpp.o"
  "CMakeFiles/table03_bandwidth.dir/table03_bandwidth.cpp.o.d"
  "table03_bandwidth"
  "table03_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
