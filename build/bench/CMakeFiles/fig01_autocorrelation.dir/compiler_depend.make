# Empty compiler generated dependencies file for fig01_autocorrelation.
# This may be replaced when dependencies are built.
