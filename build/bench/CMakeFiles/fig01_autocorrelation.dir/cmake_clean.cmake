file(REMOVE_RECURSE
  "CMakeFiles/fig01_autocorrelation.dir/fig01_autocorrelation.cpp.o"
  "CMakeFiles/fig01_autocorrelation.dir/fig01_autocorrelation.cpp.o.d"
  "fig01_autocorrelation"
  "fig01_autocorrelation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_autocorrelation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
