file(REMOVE_RECURSE
  "CMakeFiles/fig24_memorization.dir/fig24_memorization.cpp.o"
  "CMakeFiles/fig24_memorization.dir/fig24_memorization.cpp.o.d"
  "fig24_memorization"
  "fig24_memorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_memorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
