# Empty dependencies file for fig24_memorization.
# This may be replaced when dependencies are built.
