file(REMOVE_RECURSE
  "CMakeFiles/fig27_forecasting.dir/fig27_forecasting.cpp.o"
  "CMakeFiles/fig27_forecasting.dir/fig27_forecasting.cpp.o.d"
  "fig27_forecasting"
  "fig27_forecasting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig27_forecasting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
