# Empty compiler generated dependencies file for fig27_forecasting.
# This may be replaced when dependencies are built.
