file(REMOVE_RECURSE
  "CMakeFiles/table04_rank_correlation.dir/table04_rank_correlation.cpp.o"
  "CMakeFiles/table04_rank_correlation.dir/table04_rank_correlation.cpp.o.d"
  "table04_rank_correlation"
  "table04_rank_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_rank_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
