# Empty dependencies file for table04_rank_correlation.
# This may be replaced when dependencies are built.
