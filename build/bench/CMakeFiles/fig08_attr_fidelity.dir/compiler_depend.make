# Empty compiler generated dependencies file for fig08_attr_fidelity.
# This may be replaced when dependencies are built.
