file(REMOVE_RECURSE
  "CMakeFiles/fig08_attr_fidelity.dir/fig08_attr_fidelity.cpp.o"
  "CMakeFiles/fig08_attr_fidelity.dir/fig08_attr_fidelity.cpp.o.d"
  "fig08_attr_fidelity"
  "fig08_attr_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_attr_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
