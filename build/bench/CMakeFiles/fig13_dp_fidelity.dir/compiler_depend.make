# Empty compiler generated dependencies file for fig13_dp_fidelity.
# This may be replaced when dependencies are built.
