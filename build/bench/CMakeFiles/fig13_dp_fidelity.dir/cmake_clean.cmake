file(REMOVE_RECURSE
  "CMakeFiles/fig13_dp_fidelity.dir/fig13_dp_fidelity.cpp.o"
  "CMakeFiles/fig13_dp_fidelity.dir/fig13_dp_fidelity.cpp.o.d"
  "fig13_dp_fidelity"
  "fig13_dp_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_dp_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
