
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig13_dp_fidelity.cpp" "bench/CMakeFiles/fig13_dp_fidelity.dir/fig13_dp_fidelity.cpp.o" "gcc" "bench/CMakeFiles/fig13_dp_fidelity.dir/fig13_dp_fidelity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dg_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/dg_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/downstream/CMakeFiles/dg_downstream.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/dg_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dg_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dg_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
