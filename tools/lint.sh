#!/usr/bin/env bash
# clang-tidy driver for the project (config: .clang-tidy at the repo root).
#
# Usage:
#   tools/lint.sh [--fix] [paths...]
#
# Lints every .cpp under src/, tests/, bench/ and tools/ by default.
# Needs a clang-tidy binary (any recent major version); configures a
# dedicated build dir to get compile_commands.json if none exists yet.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

fix_args=()
paths=()
for arg in "$@"; do
  case "$arg" in
    --fix) fix_args+=(--fix --fix-errors) ;;
    *) paths+=("$arg") ;;
  esac
done
if [ "${#paths[@]}" -eq 0 ]; then
  while IFS= read -r f; do paths+=("$f"); done \
    < <(find src tests bench tools -name '*.cpp' | sort)
fi

# Locate clang-tidy: plain name first, then versioned fallbacks.
tidy=""
for cand in clang-tidy clang-tidy-{21,20,19,18,17,16,15,14}; do
  if command -v "$cand" > /dev/null 2>&1; then
    tidy="$cand"
    break
  fi
done
if [ -z "$tidy" ]; then
  echo "lint.sh: no clang-tidy binary found on PATH — skipping tidy pass." >&2
  echo "lint.sh: install clang-tidy (e.g. apt-get install clang-tidy) to run it." >&2
  exit 0
fi

# compile_commands.json: reuse an existing build dir or configure one. The
# lint build dir is configured portable (no -march=native) so the database
# matches what CI's clang-tidy job sees.
db_dir=""
for d in build-lint build build-werror build-asan; do
  if [ -f "$d/compile_commands.json" ]; then
    db_dir="$d"
    break
  fi
done
if [ -z "$db_dir" ]; then
  db_dir=build-lint
  cmake -B "$db_dir" -S . -DDG_NATIVE_ARCH=OFF > /dev/null
fi

echo "lint.sh: $tidy over ${#paths[@]} files (compile db: $db_dir)"
status=0
for f in "${paths[@]}"; do
  if ! "$tidy" -p "$db_dir" --quiet ${fix_args[0]+"${fix_args[@]}"} "$f"; then
    status=1
  fi
done
if [ "$status" -ne 0 ]; then
  echo "lint.sh: clang-tidy reported findings (see above)" >&2
fi
exit "$status"
