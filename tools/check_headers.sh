#!/usr/bin/env bash
# Header self-sufficiency check: every public header under src/ must
# compile standalone (all of its own includes present, nothing leaking in
# from whoever happened to include it first). Each header is compiled as a
# lone translation unit; a failure prints that header's diagnostics.
#
# Usage:
#   tools/check_headers.sh [headers...]     # default: all of src/**/*.h
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

headers=("$@")
if [ "${#headers[@]}" -eq 0 ]; then
  while IFS= read -r h; do headers+=("$h"); done \
    < <(find src -name '*.h' | sort)
fi

cxx="${CXX:-c++}"
std="-std=c++20"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "check_headers.sh: compiling ${#headers[@]} headers standalone ($cxx)"
status=0
for h in "${headers[@]}"; do
  tu="$tmp/tu.cpp"
  printf '#include "%s"\n' "${h#src/}" > "$tu"  # project-style include path
  if ! "$cxx" $std -Isrc -fsyntax-only -Wall -Wextra "$tu" 2> "$tmp/err"; then
    echo "FAIL: $h is not self-sufficient" >&2
    cat "$tmp/err" >&2
    status=1
  fi
done
if [ "$status" -eq 0 ]; then
  echo "check_headers.sh: all headers self-sufficient"
fi
exit "$status"
