#!/usr/bin/env bash
# Header self-sufficiency check: every public header under src/ must
# compile standalone (all of its own includes present, nothing leaking in
# from whoever happened to include it first). Each header is compiled as a
# lone translation unit; a failure prints that header's diagnostics.
#
# Usage:
#   tools/check_headers.sh [headers...]     # default: all of src/**/*.h
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

headers=("$@")
if [ "${#headers[@]}" -eq 0 ]; then
  # NUL-delimited so a header path with whitespace cannot split or vanish.
  while IFS= read -r -d '' h; do headers+=("$h"); done \
    < <(find src -name '*.h' -print0 | sort -z)
fi
if [ "${#headers[@]}" -eq 0 ]; then
  # An empty discovery set means the tree moved, not that there is nothing
  # to check — a silent exit 0 here would quietly disable the gate.
  echo "check_headers.sh: no headers found under src/ — refusing to pass trivially" >&2
  exit 1
fi
for h in "${headers[@]}"; do
  if [ ! -f "$h" ]; then
    echo "check_headers.sh: no such header: $h" >&2
    exit 1
  fi
done

cxx="${CXX:-c++}"
std="-std=c++20"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "check_headers.sh: compiling ${#headers[@]} headers standalone ($cxx)"
status=0
for h in "${headers[@]}"; do
  tu="$tmp/tu.cpp"
  printf '#include "%s"\n' "${h#src/}" > "$tu"  # project-style include path
  if ! "$cxx" $std -Isrc -fsyntax-only -Wall -Wextra "$tu" 2> "$tmp/err"; then
    echo "FAIL: $h is not self-sufficient" >&2
    cat "$tmp/err" >&2
    status=1
  fi
done
# The avx2 kernel header's whole body hides behind #if defined(__AVX2__), so
# the portable pass above only proves its empty stub compiles. On x86 hosts,
# compile the SIMD tier headers a second time with the vector ISA enabled so
# the intrinsics body is actually syntax-checked (-mfma as well: the header
# must still compile — and keep choosing mul+add — under a compiler that is
# allowed to fuse).
if [ "$(uname -m)" = "x86_64" ]; then
  simd_checked=0
  for h in "${headers[@]}"; do
    case "$h" in
      src/nn/simd/*.h)
        simd_checked=$((simd_checked + 1))
        tu="$tmp/tu_simd.cpp"
        printf '#include "%s"\n' "${h#src/}" > "$tu"
        if ! "$cxx" $std -Isrc -fsyntax-only -Wall -Wextra -mavx2 -mfma \
             "$tu" 2> "$tmp/err"; then
          echo "FAIL: $h does not compile under -mavx2 -mfma" >&2
          cat "$tmp/err" >&2
          status=1
        fi
        ;;
    esac
  done
  if [ "$simd_checked" -gt 0 ]; then
    echo "check_headers.sh: $simd_checked SIMD headers re-checked under -mavx2 -mfma"
  fi
fi

if [ "$status" -eq 0 ]; then
  echo "check_headers.sh: all headers self-sufficient"
fi
exit "$status"
