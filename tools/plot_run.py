#!/usr/bin/env python3
"""Render a training run directory's metrics.jsonl (written by
`dgcli train --run-dir DIR`, one JSON object per generator iteration).

With matplotlib available, writes DIR/run.png with four panels: losses,
gradient norms, WGAN-GP penalty, and the feature-range collapse sentinel.
Without it, prints ASCII sparkline summaries so the script is usable on a
bare training box.

usage: plot_run.py DIR [--out FILE.png]
"""

import argparse
import json
import os
import sys

SERIES = [
    ("d_loss", "critic loss"),
    ("aux_loss", "aux critic loss"),
    ("g_loss", "generator loss"),
    ("gp_penalty", "GP penalty (raw)"),
    ("d_grad_norm", "|grad D|"),
    ("g_grad_norm", "|grad G|"),
    ("feat_spread", "feature spread (collapse sentinel)"),
    ("wall_ms", "iteration wall ms"),
]


def load_run(run_dir):
    path = os.path.join(run_dir, "metrics.jsonl")
    records = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue  # torn line from a live writer
            if "iter" in obj:
                records.append(obj)
    if not records:
        raise SystemExit("no iteration records in %s" % path)
    return records


def series(records, key):
    return [r.get(key) for r in records if isinstance(r.get(key), (int, float))]


def sparkline(values, width=60):
    ticks = " .:-=+*#%@"
    if len(values) > width:  # bucket-average down to `width` points
        step = len(values) / width
        values = [
            sum(values[int(i * step):max(int(i * step) + 1, int((i + 1) * step))])
            / max(1, int((i + 1) * step) - int(i * step))
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(ticks[int((v - lo) / span * (len(ticks) - 1))] for v in values)


def ascii_report(records):
    print("%d iterations" % len(records))
    for key, label in SERIES:
        vals = series(records, key)
        if not vals:
            continue
        print(
            "%-38s last %10.4f  min %10.4f  max %10.4f\n  [%s]"
            % (label, vals[-1], min(vals), max(vals), sparkline(vals))
        )


def png_report(records, out_path):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    iters = series(records, "iter")
    panels = [
        [("d_loss", "critic"), ("aux_loss", "aux"), ("g_loss", "generator")],
        [("d_grad_norm", "|grad D|"), ("g_grad_norm", "|grad G|")],
        [("gp_penalty", "GP penalty")],
        [("feat_spread", "feature spread")],
    ]
    fig, axes = plt.subplots(len(panels), 1, figsize=(9, 11), sharex=True)
    titles = ["losses", "gradient norms", "WGAN-GP penalty", "collapse sentinel"]
    for ax, panel, title in zip(axes, panels, titles):
        for key, label in panel:
            vals = series(records, key)
            if vals:
                ax.plot(iters[: len(vals)], vals, label=label, linewidth=1.0)
        ax.set_title(title, fontsize=10)
        ax.legend(fontsize=8)
        ax.grid(True, alpha=0.3)
    axes[-1].set_xlabel("iteration")
    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    print("wrote %s" % out_path)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("run_dir", help="run directory containing metrics.jsonl")
    ap.add_argument("--out", help="output image (default DIR/run.png)")
    ap.add_argument(
        "--ascii", action="store_true", help="force the ASCII fallback"
    )
    args = ap.parse_args()

    records = load_run(args.run_dir)
    if not args.ascii:
        try:
            png_report(records, args.out or os.path.join(args.run_dir, "run.png"))
            return
        except ImportError:
            print("matplotlib unavailable; ASCII fallback", file=sys.stderr)
    ascii_report(records)


if __name__ == "__main__":
    main()
