#!/usr/bin/env python3
"""Diff two google-benchmark JSON outputs and fail on regressions.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json
        [--threshold 0.15]      relative slowdown that counts as a regression
        [--metric real_time]    which per-benchmark field to compare
        [--filter REGEX]        only compare benchmark names matching REGEX
        [--rename OLD=NEW ...]  rename benchmarks (both files) before diffing
        [--best]                with --benchmark_repetitions, compare the
                                per-name minimum instead of the last run
        [--allow-missing]       tolerate baseline benchmarks absent from the
                                current run (otherwise that fails the gate)
        [--flops]               also print a GFLOP/s table for benchmarks
                                carrying a "flops" counter (obs attribution)

Exit status: 0 when no compared benchmark regressed by more than the
threshold, 1 otherwise (and 2 on malformed input). Benchmarks only in the
current run are reported but never fail the gate, so adding a benchmark
does not require touching the baseline in the same commit. Benchmarks in
the baseline but missing from the current run FAIL the gate unless
--allow-missing: a silently-vanished benchmark (renamed, filtered out, or
crashed before registering) would otherwise turn the perf gate into a
no-op without anyone noticing. Retiring a benchmark for real means
updating the baseline in the same commit — which is the honest record.

This is CI's perf gate: the bench-smoke job regenerates CURRENT on every
push and compares it against the committed bench/baseline_ci.json. Times
are normalized to nanoseconds before comparison, so the two files may use
different time_unit settings.

--rename enables cross-configuration gates: the obs-overhead check runs the
same workload in a -DDG_OBS=OFF build (as BM_ObsOverheadOff) and an ON build
(as BM_ObsOverheadIdleOn), renames the former, and diffs them with a tight
threshold. --best pairs with --benchmark_repetitions to compare each name's
fastest repetition, which strips scheduler noise from tight-threshold gates.
"""

import argparse
import json
import re
import sys

_NS_PER = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path, metric, renames=None, best=False):
    """Returns {name: metric value in ns} for the real (non-aggregate) runs."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip _mean/_median/_stddev aggregates from --benchmark_repetitions.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if name is None or metric not in bench:
            continue
        # Repetition runs all share one name; with --best keep the fastest.
        if best and "repetition_index" in bench:
            name = re.sub(r"/repeats:\d+$", "", name)
        name = (renames or {}).get(name, name)
        unit = _NS_PER.get(bench.get("time_unit", "ns"))
        if unit is None:
            sys.exit(f"bench_compare: {path}: unknown time_unit in {name}")
        value = float(bench[metric]) * unit
        if best and name in out:
            value = min(value, out[name])
        out[name] = value
    if not out:
        sys.exit(f"bench_compare: {path}: no benchmarks with metric {metric!r}")
    return out


def load_flops(path, renames=None, best=False):
    """Returns {name: (flops, cpu_time_ns)} for runs carrying a "flops"
    counter (the obs profiler's exact per-call attribution — see
    bench/perf_microbench.cpp). One benchmark iteration is one kernel call,
    so flops / cpu_time_ns is the kernel's GFLOP/s."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if name is None or "flops" not in bench or "cpu_time" not in bench:
            continue
        if best and "repetition_index" in bench:
            name = re.sub(r"/repeats:\d+$", "", name)
        name = (renames or {}).get(name, name)
        unit = _NS_PER.get(bench.get("time_unit", "ns"))
        if unit is None:
            sys.exit(f"bench_compare: {path}: unknown time_unit in {name}")
        cpu_ns = float(bench["cpu_time"]) * unit
        if best and name in out and out[name][1] <= cpu_ns:
            continue
        out[name] = (float(bench["flops"]), cpu_ns)
    return out


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:9.2f} {unit}"
    return f"{ns:9.2f} ns"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max tolerated relative slowdown (default 0.15 = 15%%)")
    ap.add_argument("--metric", default="real_time",
                    help="benchmark field to compare (default real_time)")
    ap.add_argument("--filter", default=None, metavar="REGEX",
                    help="only compare benchmark names matching REGEX")
    ap.add_argument("--rename", action="append", default=[], metavar="OLD=NEW",
                    help="rename a benchmark in both files before diffing "
                         "(repeatable); used for cross-configuration gates")
    ap.add_argument("--best", action="store_true",
                    help="compare each name's fastest repetition instead of "
                         "the last (use with --benchmark_repetitions)")
    ap.add_argument("--allow-missing", action="store_true",
                    help="do not fail when a baseline benchmark is absent "
                         "from the current run")
    ap.add_argument("--flops", action="store_true",
                    help="also print GFLOP/s for benchmarks carrying a "
                         "'flops' counter (obs kernel attribution)")
    args = ap.parse_args()

    renames = {}
    for spec in args.rename:
        old, sep, new = spec.partition("=")
        if not sep or not old or not new:
            sys.exit(f"bench_compare: bad --rename {spec!r}, expected OLD=NEW")
        renames[old] = new

    base = load_benchmarks(args.baseline, args.metric, renames, args.best)
    cur = load_benchmarks(args.current, args.metric, renames, args.best)
    if args.filter:
        pat = re.compile(args.filter)
        base = {k: v for k, v in base.items() if pat.search(k)}
        cur = {k: v for k, v in cur.items() if pat.search(k)}

    shared = [n for n in base if n in cur]  # baseline file order
    added = sorted(set(cur) - set(base))
    removed = sorted(set(base) - set(cur))

    regressions = []
    width = max((len(n) for n in shared), default=20)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in shared:
        b, c = base[name], cur[name]
        delta = (c - b) / b if b > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {fmt_ns(b)}  {fmt_ns(c)}  {delta:+7.1%}{flag}")

    for name in added:
        print(f"{name:<{width}}  {'—':>12}  {fmt_ns(cur[name])}  (new, not gated)")
    for name in removed:
        print(f"{name:<{width}}  {fmt_ns(base[name])}  {'—':>12}  (MISSING from current)")

    if args.flops:
        base_fl = load_flops(args.baseline, renames, args.best)
        cur_fl = load_flops(args.current, renames, args.best)
        if args.filter:
            pat = re.compile(args.filter)
            base_fl = {k: v for k, v in base_fl.items() if pat.search(k)}
            cur_fl = {k: v for k, v in cur_fl.items() if pat.search(k)}
        names = sorted(set(base_fl) | set(cur_fl))
        if names:
            def gflops(entry):
                if entry is None or entry[1] <= 0:
                    return f"{'—':>10}"
                return f"{entry[0] / entry[1]:7.2f} GF/s"
            fwidth = max(width, max(len(n) for n in names))
            print(f"\n{'kernel throughput':<{fwidth}}  {'baseline':>12}  "
                  f"{'current':>12}")
            for name in names:
                print(f"{name:<{fwidth}}  {gflops(base_fl.get(name))}  "
                      f"{gflops(cur_fl.get(name))}")

    if removed and not args.allow_missing:
        print(f"\nbench_compare: FAIL — {len(removed)} baseline benchmark(s) "
              f"missing from current run (pass --allow-missing to tolerate):",
              file=sys.stderr)
        for name in removed:
            print(f"  {name}", file=sys.stderr)
        return 1
    if regressions:
        print(f"\nbench_compare: FAIL — {len(regressions)} benchmark(s) regressed "
              f"beyond {args.threshold:.0%} on {args.metric}:", file=sys.stderr)
        for name, delta in sorted(regressions, key=lambda x: -x[1]):
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nbench_compare: OK — {len(shared)} benchmarks within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
