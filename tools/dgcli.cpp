// dgcli — command-line front end for the DoppelGANger library.
//
//   dgcli make-synth --dataset wwt|mba|gcut --n N --schema S.schema --out D.csv
//   dgcli train      --schema S.schema --data D.csv --out M.dgpkg
//                    [--iterations N] [--sample-len S] [--batch B] [--seed X]
//                    [--no-minmax] [--no-aux] [--lstm-units U] [--d-steps K]
//                    [--run-dir DIR]
//   dgcli generate   --model M.dgpkg --n N --out synth.csv
//                    [--seed X] [--format csv|bin]
//   dgcli serve      --model M.dgpkg [--port P] [--slots W] [--engines E]
//                    [--queue Q] [--poll SECONDS] [--port-file F]
//   dgcli route      --model M.dgpkg [--workers N] [--port P] [--slots W]
//                    [--engines E] [--queue Q] [--poll SECONDS] [--cache C]
//                    [--max-inflight M] [--slo-p99 MS] [--port-file F]
//                    [--trace-sample RATE]
//   dgcli route      --endpoints h:p1,h:p2[,...] [--port P] [--cache C]
//                    [--max-inflight M] [--slo-p99 MS] [--port-file F]
//                    [--trace-sample RATE]
//   dgcli trace      --port P [--host H] [--out trace.json]
//   dgcli request    --port P [--host H] [--n N] [--seed X] [--max-len L]
//                    [--attempts A] [--fixed a=v,b=v] [--where "a=v,b>=v"]
//                    [--out synth.csv] [--stats] [--json] [--raw LINE]
//   dgcli stats      --schema S.schema --data D.csv [--compare other.csv]
//   dgcli stats      --port P [--host H] [--json]
//   dgcli top        --run DIR [--follow] [--rows N]
//   dgcli check      [--seed X] [--iterations N]
//   dgcli lint       --package M.dgpkg [--json] [--tape]
//   dgcli lint       --schema S.schema [--config C.cfg] [--json] [--tape]
//                    [--train] [--assume-first-order op1,op2]
//                    [--tape-mutate use-before-def|arena-overlap|
//                     illegal-fusion|unknown-op|stale-shape]
//                    [--train-mutate wrong-adjoint-shape|dropped-accum-edge|
//                     mislabel-det-class]
//
// The .dgpkg package bundles schema + architecture + trained parameters, so
// `generate` needs nothing else — the paper's Fig 2 release flow. `serve`
// keeps a package resident behind a TCP JSON-lines endpoint (hot-reloading
// it when the file changes) and `request` is the matching client: `--fixed`
// clamps attributes (Fig 30 flexibility), `--where` rejection-samples
// against predicates (ops = != <= >=), labels or numbers both accepted.
//
// `route` runs the shard front tier: with `--model`, it spawns and
// supervises N worker `serve` processes itself (ephemeral ports, crash
// respawn); with `--endpoints`, it fronts externally-started workers.
// Requests shard by seed-hash (replies are byte-identical to a single
// server's — see src/serve/shard/router.h), a seed-addressed cache answers
// repeats, and overload gets structured `shed` errors. `--port-file` (both
// serve and route) writes the bound port after listen — how the router
// discovers its spawned workers' ephemeral ports, and how scripts discover
// the router's.
//
// `check` verifies the autograd engine on this machine: a finite-difference
// gradcheck battery (including the WGAN-GP second-order path) followed by an
// AnomalyGuard-instrumented mini training run of the full DoppelGANger graph
// (attribute MLP -> min/max MLP -> LSTM -> GP second-order pass).
//
// `lint` runs the static graph analyzer: `--package` preflights a .dgpkg
// (header, schema, config, weight-shape census) without loading a float;
// `--schema [--config]` meta-executes the full architecture symbolically and
// reports shape errors, dead parameters, and critic-path ops that lack
// double-backward support before any training run. `--assume-first-order`
// downgrades named ops in the registry (what-if / mutation-test hook).
// `--tape` additionally lowers the generation step to the serving replay
// tape (analysis/tape.h), runs the static verifier, and reports the plan
// census (instructions, fusion groups, arena peak bytes); `--tape-mutate`
// seeds one named defect class first — the negative control that proves the
// verifier rejects a corrupted tape (expected exit: FAIL).
// `--train` runs the static adjoint auditor (analysis/train_step.h): one
// full WGAN-GP training step meta-executed symbolically — generator forward,
// both critic steps with the gradient-penalty double backward, generator
// step — verifying every adjoint's shape, def-before-use on every optimizer
// gradient slot, and the per-op determinism classes; it prints the
// reduction-order census (the accumulation sites a future data-parallel
// all-reduce must pin). `--train-mutate` seeds one named adjoint defect
// class first (the matching negative control; expected exit: FAIL).
//
// Observability: `train --run-dir DIR` streams per-iteration telemetry to
// DIR/metrics.jsonl and drops trace.json (chrome://tracing), trace.jsonl,
// profile.json (per-op/kernel wall+FLOPs) and registry.json there; `top`
// tails a run directory live; `stats --port` pretty-prints a running
// server's metrics registry (latency histograms include their slow-request
// exemplar: "p99 => trace 0x...").
//
// Distributed tracing: `route --trace-sample RATE` stamps that fraction of
// generate requests with a trace context that propagates
// router -> worker -> lane; `dgcli trace --port <router>` drains every
// process's span buffer, rebases worker timestamps onto the router's
// steady_clock via the health sweep's clock handshake, and writes ONE
// merged chrome://tracing / Perfetto file in which a request's span tree
// nests across processes.
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "analysis/adjoint.h"
#include "analysis/diag.h"
#include "analysis/model.h"
#include "analysis/tape.h"
#include "analysis/registry.h"
#include "analysis/train_step.h"
#include "core/doppelganger.h"
#include "core/package.h"
#include "core/preflight.h"
#include "core/wgan.h"
#include "data/io.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "nn/check.h"
#include "nn/gradcheck.h"
#include "nn/parallel.h"
#include "nn/simd/vec.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/runlog.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/shard/router.h"
#include "synth/synth.h"

namespace {

using namespace dg;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const { return options.count(name) > 0; }
  std::string str(const std::string& name, const std::string& fallback = "") const {
    auto it = options.find(name);
    if (it == options.end()) {
      if (fallback.empty()) {
        throw std::runtime_error("missing required option --" + name);
      }
      return fallback;
    }
    return it->second;
  }
  long num(const std::string& name, long fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback : std::stol(it->second);
  }
  double dbl(const std::string& name, double fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback : std::stod(it->second);
  }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc < 2) throw std::runtime_error("no command given");
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) throw std::runtime_error("bad option " + key);
    key = key.substr(2);
    // Constructing the std::string up front (rather than assigning the char*
    // into the map slot) sidesteps a GCC 12 -Wrestrict false positive on the
    // basic_string::assign(const char*) path at -O3.
    const char* v = (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
                        ? argv[++i]
                        : "1";  // bare option = boolean flag
    a.options.insert_or_assign(std::move(key), std::string(v));
  }
  return a;
}

int cmd_make_synth(const Args& a) {
  const std::string kind = a.str("dataset");
  const int n = static_cast<int>(a.num("n", 500));
  const uint64_t seed = static_cast<uint64_t>(a.num("seed", 1));
  synth::SynthData d;
  if (kind == "wwt") {
    d = synth::make_wwt({.n = n, .seed = seed});
  } else if (kind == "mba") {
    d = synth::make_mba({.n = n, .seed = seed});
  } else if (kind == "gcut") {
    d = synth::make_gcut({.n = n, .seed = seed});
  } else {
    throw std::runtime_error("unknown --dataset (wwt|mba|gcut)");
  }
  data::save_schema_file(a.str("schema"), d.schema);
  data::save_csv_file(a.str("out"), d.schema, d.data);
  std::printf("wrote %zu objects to %s (schema: %s)\n", d.data.size(),
              a.str("out").c_str(), a.str("schema").c_str());
  return 0;
}

core::DoppelGangerConfig config_from(const Args& a, const data::Schema& schema) {
  core::DoppelGangerConfig cfg;
  cfg.sample_len = static_cast<int>(
      a.num("sample-len", std::max(1, schema.max_timesteps / 28)));
  cfg.lstm_units = static_cast<int>(a.num("lstm-units", 64));
  cfg.head_hidden = cfg.lstm_units;
  cfg.disc_hidden = static_cast<int>(a.num("disc-hidden", 128));
  cfg.disc_layers = 3;
  cfg.batch = static_cast<int>(a.num("batch", 32));
  cfg.iterations = static_cast<int>(a.num("iterations", 800));
  cfg.d_steps = static_cast<int>(a.num("d-steps", 2));
  cfg.seed = static_cast<uint64_t>(a.num("seed", 0));
  cfg.use_minmax_generator = !a.flag("no-minmax");
  cfg.use_aux_discriminator = !a.flag("no-aux");
  return cfg;
}

int cmd_train(const Args& a) {
  const data::Schema schema = data::load_schema_file(a.str("schema"));
  const data::Dataset train = data::load_csv_file(a.str("data"), schema);
  const auto cfg = config_from(a, schema);
  core::DoppelGanger model(schema, cfg);

  // --run-dir: full instrumentation. Per-iteration telemetry streams to
  // DIR/metrics.jsonl while training runs (tail with `dgcli top --follow`);
  // trace + profiler dumps land there on completion.
  std::shared_ptr<obs::RunLogger> run_log;
  if (a.flag("run-dir")) {
    run_log = std::make_shared<obs::RunLogger>(a.str("run-dir"));
    model.set_run_logger(run_log);
    run_log->log_event("{\"event\":\"fit_start\",\"iterations\":" +
                       std::to_string(cfg.iterations) + ",\"batch\":" +
                       std::to_string(cfg.batch) + ",\"sample_len\":" +
                       std::to_string(cfg.sample_len) + "}");
    obs::Trace::start();
    obs::Profiler::start();
  }

  std::printf("training on %zu objects (%d iterations, S=%d)...\n",
              train.size(), cfg.iterations, cfg.sample_len);
  const auto stats = model.fit(train);
  std::printf("final losses: critic %.3f, generator %.3f\n",
              stats.d_loss.back(), stats.g_loss.back());

  if (run_log) {
    obs::Trace::stop();
    obs::Profiler::stop();
    run_log->log_event("{\"event\":\"fit_end\"}");
    const std::string dir = run_log->dir();
    {
      std::ofstream os(dir + "/trace.json");
      obs::Trace::write_chrome(os);
    }
    {
      std::ofstream os(dir + "/trace.jsonl");
      obs::Trace::write_jsonl(os);
    }
    {
      std::ofstream os(dir + "/profile.json");
      os << obs::Profiler::to_json() << "\n";
    }
    {
      std::ofstream os(dir + "/registry.json");
      os << obs::to_json(obs::Registry::global().snapshot()) << "\n";
    }
    std::printf("run telemetry in %s (metrics.jsonl, trace.json, "
                "profile.json, registry.json)\n",
                dir.c_str());
  }

  core::save_package_file(a.str("out"), model);
  std::printf("wrote model package %s\n", a.str("out").c_str());
  return 0;
}

int cmd_generate(const Args& a) {
  auto model = core::load_package_file(a.str("model"));
  const int n = static_cast<int>(a.num("n", 500));
  if (a.flag("seed")) model->reseed(static_cast<uint64_t>(a.num("seed", 0)));
  const data::Dataset out = model->generate(n);
  const std::string format = a.str("format", "csv");
  if (format == "bin") {
    data::save_binary_file(a.str("out"), model->schema(), out);
  } else if (format == "csv") {
    data::save_csv_file(a.str("out"), model->schema(), out);
  } else {
    throw std::runtime_error("unknown --format (csv|bin)");
  }
  std::printf("generated %d objects -> %s (%s)\n", n, a.str("out").c_str(),
              format.c_str());
  return 0;
}

// ---------------------------------------------------------------- serve

volatile std::sig_atomic_t g_stop_requested = 0;
void request_stop(int) { g_stop_requested = 1; }

/// Parks the calling thread until SIGINT/SIGTERM; lets destructors run on
/// the way out (a supervising router must get to kill its spawned workers).
void run_until_signal() {
  std::signal(SIGINT, request_stop);
  std::signal(SIGTERM, request_stop);
  while (!g_stop_requested) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

/// `--port-file F`: publish the actually-bound (possibly ephemeral) port
/// for whoever spawned us — the router's worker-discovery handshake.
void write_port_file(const Args& a, int port) {
  if (!a.flag("port-file")) return;
  std::ofstream pf(a.str("port-file"));
  pf << port << "\n";
}

int cmd_serve(const Args& a) {
  serve::ServiceConfig cfg;
  cfg.package_path = a.str("model");
  cfg.slots = static_cast<int>(a.num("slots", 32));
  cfg.engines = static_cast<int>(a.num("engines", 1));
  cfg.queue_capacity = static_cast<size_t>(a.num("queue", 256));
  cfg.reload_poll_seconds =
      static_cast<double>(a.num("poll", 1));  // 0 disables hot reload
  serve::GenerationService service(cfg);
  // Collect spans from the start: a worker only records spans for requests
  // the router stamped (the sampling decision is the router's), so an idle
  // or unsampled fleet pays just the enabled-flag check. The ring is capped
  // (DG_OBS_SPAN_CAP) and drained by the router's `trace` op.
  obs::Trace::start();
  service.start();
  serve::TcpServer server(service, static_cast<int>(a.num("port", 7788)));
  server.start();
  write_port_file(a, server.port());
  std::printf("serving %s on 127.0.0.1:%d (%d slots x %d engine%s)\n",
              cfg.package_path.c_str(), server.port(), cfg.slots, cfg.engines,
              cfg.engines == 1 ? "" : "s");
  std::fflush(stdout);
  run_until_signal();
  server.stop();
  service.stop();
  return 0;
}

// ---------------------------------------------------------------- route

std::vector<std::string> split_clauses(const std::string& s);

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    throw std::runtime_error("route: cannot resolve /proc/self/exe");
  }
  buf[n] = '\0';
  return std::string(buf);
}

int cmd_route(const Args& a) {
  serve::shard::RouterConfig rcfg;
  rcfg.cache_capacity = static_cast<size_t>(a.num("cache", 1024));
  rcfg.max_inflight_per_worker = static_cast<int>(a.num("max-inflight", 64));
  rcfg.slo_p99_ms = static_cast<double>(a.num("slo-p99", 0));
  rcfg.trace_sample_rate = a.dbl("trace-sample", 0.01);
  if (rcfg.trace_sample_rate > 0.0) obs::Trace::start();

  std::unique_ptr<serve::shard::WorkerPool> pool;
  if (a.flag("endpoints")) {
    std::vector<serve::shard::WorkerEndpoint> eps;
    for (const std::string& e : split_clauses(a.str("endpoints"))) {
      eps.push_back(serve::shard::parse_endpoint(e));
    }
    pool = std::make_unique<serve::shard::WorkerPool>(std::move(eps));
  } else {
    const int replicas = static_cast<int>(a.num("workers", 2));
    serve::shard::SpawnSpec spec;
    spec.argv = {self_exe_path(),
                 "serve",
                 "--model",
                 a.str("model"),
                 "--slots",
                 std::to_string(a.num("slots", 32)),
                 "--engines",
                 std::to_string(a.num("engines", 1)),
                 "--queue",
                 std::to_string(a.num("queue", 256)),
                 "--poll",
                 std::to_string(a.num("poll", 1))};
    char scratch[] = "/tmp/dgroute.XXXXXX";
    if (::mkdtemp(scratch) == nullptr) {
      throw std::runtime_error("route: mkdtemp failed for port-file scratch");
    }
    spec.port_file_dir = scratch;
    pool = std::make_unique<serve::shard::WorkerPool>(replicas,
                                                      std::move(spec));
    std::printf("spawning %d worker%s...\n", replicas,
                replicas == 1 ? "" : "s");
    std::fflush(stdout);
    pool->start();
  }

  serve::shard::Router router(*pool, rcfg);
  router.start();
  serve::TcpServer server(router.handler(),
                          static_cast<int>(a.num("port", 7799)));
  server.start();
  write_port_file(a, server.port());
  std::printf("routing on 127.0.0.1:%d across %zu workers:\n", server.port(),
              pool->size());
  for (size_t i = 0; i < pool->size(); ++i) {
    const auto ep = pool->worker(i).endpoint();
    std::printf("  worker %zu: %s:%d (%s)\n", i, ep.host.c_str(), ep.port,
                serve::shard::to_string(pool->worker(i).state()));
  }
  std::fflush(stdout);
  run_until_signal();
  server.stop();
  router.stop();
  pool->shutdown();
  return 0;
}

// ---------------------------------------------------------------- trace

/// `dgcli trace --port <router>`: drains the fleet's span buffers through
/// the router's `trace` op and writes ONE merged chrome://tracing /
/// Perfetto file. Worker events are rebased onto the router's steady_clock
/// timebase using the offset the health sweep's clock handshake measured
/// (worker ts + offset ≈ router ts, ± skew); each event carries its
/// process's skew bound in args so a reader knows how much to trust
/// cross-process nesting. Pointing it at a single worker works too (that
/// reply has no process list — its events pass through unrebased).
int cmd_trace(const Args& a) {
  const std::string host = a.str("host", "127.0.0.1");
  const int port = static_cast<int>(a.num("port", 7799));
  const std::string reply =
      serve::send_line(host, port, "{\"op\":\"trace\"}");
  const serve::json::Value v = serve::json::parse(reply);
  if (!v.bool_or("ok", false)) {
    throw std::runtime_error("trace: server refused trace op: " + reply);
  }
  serve::json::Array procs;
  if (const auto* p = v.find("processes"); p != nullptr && p->is_array()) {
    procs = p->as_array();
  } else if (const auto* events = v.find("events")) {
    serve::json::Value row{serve::json::Object{}};
    row.set("pid", 1);
    row.set("name", "server");
    row.set("offset_us", 0);
    row.set("skew_us", 0);
    row.set("dropped", v.number_or("dropped", 0));
    row.set("events", *events);
    procs.push_back(std::move(row));
  }

  serve::json::Array out;
  std::size_t n_events = 0;
  double dropped = 0.0;
  std::int64_t max_skew = 0;
  std::set<std::string> traces;
  for (const auto& row : procs) {
    const double pid = row.number_or("pid", 1);
    const auto off = static_cast<std::int64_t>(row.number_or("offset_us", 0));
    const auto skew = static_cast<std::int64_t>(row.number_or("skew_us", 0));
    dropped += row.number_or("dropped", 0);
    max_skew = std::max(max_skew, skew);
    {
      serve::json::Value meta{serve::json::Object{}};
      meta.set("ph", "M");
      meta.set("name", "process_name");
      meta.set("pid", pid);
      serve::json::Value margs{serve::json::Object{}};
      margs.set("name", row.string_or("name", "proc"));
      meta.set("args", std::move(margs));
      out.push_back(std::move(meta));
      serve::json::Value sort{serve::json::Object{}};
      sort.set("ph", "M");
      sort.set("name", "process_sort_index");
      sort.set("pid", pid);
      serve::json::Value sargs{serve::json::Object{}};
      sargs.set("sort_index", pid);
      sort.set("args", std::move(sargs));
      out.push_back(std::move(sort));
    }
    const auto* events = row.find("events");
    if (events == nullptr || !events->is_array()) continue;
    for (const auto& ev : events->as_array()) {
      serve::json::Value e{serve::json::Object{}};
      e.set("name", ev.string_or("name", "?"));
      e.set("cat", ev.string_or("cat", ""));
      e.set("ph", "X");
      e.set("pid", pid);
      e.set("tid", ev.number_or("tid", 0));
      e.set("ts", static_cast<std::int64_t>(ev.number_or("ts_us", 0)) + off);
      e.set("dur", ev.number_or("dur_us", 0));
      serve::json::Value args{serve::json::Object{}};
      const std::string trace = ev.string_or("trace", "");
      if (!trace.empty()) {
        args.set("trace", trace);
        args.set("span", ev.string_or("span", ""));
        const std::string parent = ev.string_or("parent", "");
        if (!parent.empty()) args.set("parent", parent);
        traces.insert(trace);
      }
      args.set("skew_us", skew);
      e.set("args", std::move(args));
      out.push_back(std::move(e));
      ++n_events;
    }
  }
  serve::json::Value doc{serve::json::Object{}};
  doc.set("displayTimeUnit", "ms");
  doc.set("traceEvents", std::move(out));
  const std::string path = a.str("out", "trace.json");
  std::ofstream os(path);
  if (!os) throw std::runtime_error("trace: cannot open " + path);
  os << serve::json::dump(doc) << "\n";
  std::printf("wrote %s: %zu spans across %zu process%s, %zu sampled "
              "trace%s, %.0f dropped, max clock skew %lld us\n",
              path.c_str(), n_events, procs.size(),
              procs.size() == 1 ? "" : "es", traces.size(),
              traces.size() == 1 ? "" : "s", dropped,
              static_cast<long long>(max_skew));
  return 0;
}

/// Splits "a=1,b=two" style comma-separated clauses.
std::vector<std::string> split_clauses(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  std::stringstream ss(s);
  while (std::getline(ss, cur, ',')) {
    if (!cur.empty()) out.push_back(cur);
  }
  return out;
}

/// True (and sets `value`) when the whole token parses as a number.
bool parse_number(const std::string& s, float& value) {
  char* end = nullptr;
  value = std::strtof(s.c_str(), &end);
  return end != nullptr && *end == '\0' && end != s.c_str();
}

serve::GenRequest request_from(const Args& a) {
  serve::GenRequest req;
  req.id = static_cast<uint64_t>(a.num("id", 1));
  req.seed = static_cast<uint64_t>(a.num("seed", 0));
  req.count = static_cast<int>(a.num("n", 1));
  req.max_len = static_cast<int>(a.num("max-len", 0));
  req.max_attempts = static_cast<int>(a.num("attempts", 16));
  if (a.flag("fixed")) {
    for (const std::string& clause : split_clauses(a.str("fixed"))) {
      const size_t eq = clause.find('=');
      if (eq == std::string::npos) {
        throw std::runtime_error("--fixed expects name=value clauses");
      }
      serve::FixedAttr f;
      f.attr = clause.substr(0, eq);
      const std::string v = clause.substr(eq + 1);
      if (!parse_number(v, f.value)) f.label = v;
      req.fixed.push_back(std::move(f));
    }
  }
  if (a.flag("where")) {
    for (const std::string& clause : split_clauses(a.str("where"))) {
      serve::AttrPredicate p;
      size_t at = std::string::npos;
      size_t skip = 2;
      if ((at = clause.find("!=")) != std::string::npos) {
        p.op = serve::AttrPredicate::Op::Ne;
      } else if ((at = clause.find(">=")) != std::string::npos) {
        p.op = serve::AttrPredicate::Op::Ge;
      } else if ((at = clause.find("<=")) != std::string::npos) {
        p.op = serve::AttrPredicate::Op::Le;
      } else if ((at = clause.find('=')) != std::string::npos) {
        p.op = serve::AttrPredicate::Op::Eq;
        skip = 1;
      } else {
        throw std::runtime_error("--where clause needs one of = != <= >=");
      }
      p.attr = clause.substr(0, at);
      const std::string v = clause.substr(at + skip);
      if (!parse_number(v, p.value)) p.label = v;
      req.where.push_back(std::move(p));
    }
  }
  return req;
}

int cmd_request(const Args& a) {
  const std::string host = a.str("host", "127.0.0.1");
  const int port = static_cast<int>(a.num("port", 7788));
  if (a.flag("stats")) {
    std::printf("%s\n", serve::send_line(host, port, "{\"op\":\"stats\"}").c_str());
    return 0;
  }
  if (a.flag("raw")) {
    // One verbatim protocol line -> one reply line. This is how the
    // router's admin ops (drain/undrain/restart) are reached from the CLI.
    std::printf("%s\n", serve::send_line(host, port, a.str("raw")).c_str());
    return 0;
  }
  const serve::GenRequest req = request_from(a);
  const std::string reply =
      serve::send_line(host, port, serve::json::dump(serve::request_to_json(req)));
  if (a.flag("json")) {
    std::printf("%s\n", reply.c_str());
    return 0;
  }
  // Decode: fetch the schema so objects round-trip through the typed form.
  const std::string schema_reply =
      serve::send_line(host, port, "{\"op\":\"schema\"}");
  const serve::json::Value sv = serve::json::parse(schema_reply);
  if (!sv.bool_or("ok", false)) {
    throw std::runtime_error("server refused schema op: " + schema_reply);
  }
  std::istringstream ss(sv.string_or("schema", ""));
  const data::Schema schema = data::load_schema(ss);
  const serve::GenResponse resp =
      serve::response_from_json(serve::json::parse(reply), schema);
  if (!resp.ok) {
    std::fprintf(stderr, "request failed: %s\n", resp.error.c_str());
    return 1;
  }
  std::printf("received %zu/%d objects (%s, %lld rejected, %.1f ms)\n",
              resp.objects.size(), req.count,
              resp.complete ? "complete" : "partial", resp.series_rejected,
              resp.latency_ms);
  if (!resp.complete) std::printf("note: %s\n", resp.error.c_str());
  if (a.flag("out")) {
    data::save_csv_file(a.str("out"), schema, resp.objects);
    std::printf("wrote %s\n", a.str("out").c_str());
  }
  return resp.complete ? 0 : 3;
}

void print_stats(const char* tag, const data::Schema& schema,
                 const data::Dataset& d) {
  std::printf("[%s] %zu objects\n", tag, d.size());
  double mean_len = 0;
  for (const auto& o : d) mean_len += o.length();
  std::printf("[%s] mean length %.1f / max %d\n", tag,
              mean_len / static_cast<double>(d.size()), schema.max_timesteps);
  for (size_t j = 0; j < schema.attributes.size(); ++j) {
    const auto& spec = schema.attributes[j];
    if (spec.type != data::FieldType::Categorical) continue;
    const auto m = eval::attribute_marginal(d, schema, static_cast<int>(j));
    std::printf("[%s] %s:", tag, spec.name.c_str());
    for (int c = 0; c < spec.n_categories; ++c) {
      std::printf(" %s=%.3f", spec.labels[static_cast<size_t>(c)].c_str(),
                  m[static_cast<size_t>(c)]);
    }
    std::printf("\n");
  }
}

// ------------------------------------------------------- registry printing

/// Pretty-prints one registry snapshot (the JSON form the server's
/// "metrics" op returns) as an aligned name/value table.
void print_metric_table(const char* title, const serve::json::Value& reg) {
  struct Row {
    std::string name;
    std::string value;
  };
  std::vector<Row> rows;
  char buf[160];
  if (const auto* c = reg.find("counters"); c && c->is_object()) {
    for (const auto& [name, v] : c->as_object()) {
      std::snprintf(buf, sizeof(buf), "%.0f", v.as_number());
      rows.push_back({name, buf});
    }
  }
  if (const auto* g = reg.find("gauges"); g && g->is_object()) {
    for (const auto& [name, v] : g->as_object()) {
      std::snprintf(buf, sizeof(buf), "%.6g",
                    v.is_number() ? v.as_number() : 0.0);
      rows.push_back({name, buf});
    }
  }
  if (const auto* h = reg.find("histograms"); h && h->is_object()) {
    for (const auto& [name, hv] : h->as_object()) {
      std::snprintf(buf, sizeof(buf),
                    "count %.0f  p50 %.3f  p90 %.3f  p99 %.3f  max %.3f",
                    hv.number_or("count", 0), hv.number_or("p50", 0),
                    hv.number_or("p90", 0), hv.number_or("p99", 0),
                    hv.number_or("max", 0));
      rows.push_back({name, buf});
      // Slow-request exemplar: the worst recent request in the highest
      // populated bucket — the p99 culprit's trace id, resolvable against
      // a `dgcli trace` dump of the same fleet.
      if (const auto* ex = hv.find("exemplars");
          ex != nullptr && ex->is_array() && !ex->as_array().empty()) {
        const serve::json::Value* worst = nullptr;
        for (const auto& e : ex->as_array()) {
          if (worst == nullptr ||
              e.number_or("bucket", 0) > worst->number_or("bucket", 0)) {
            worst = &e;
          }
        }
        std::snprintf(buf, sizeof(buf), "p99 bucket => trace 0x%s (%.3f)",
                      worst->string_or("trace", "?").c_str(),
                      worst->number_or("v", 0));
        rows.push_back({name + ".exemplar", buf});
      }
    }
  }
  std::printf("== %s ==\n", title);
  if (rows.empty()) {
    std::printf("  (no metrics)\n");
    return;
  }
  std::size_t width = 0;
  for (const Row& r : rows) width = std::max(width, r.name.size());
  for (const Row& r : rows) {
    std::printf("  %-*s  %s\n", static_cast<int>(width), r.name.c_str(),
                r.value.c_str());
  }
}

/// Router-mode rendering: the fleet-aggregated registry plus a per-shard
/// table (state, inflight, occupancy, p99, reloads, package hash) and a
/// one-line admission/cache summary — the operator's view of the tier.
int cmd_stats_router(const Args& a, const serve::json::Value& metrics) {
  const std::string host = a.str("host", "127.0.0.1");
  const int port = static_cast<int>(a.num("port", 7788));
  if (const auto* router = metrics.find("router")) {
    print_metric_table("router metrics", *router);
  }
  if (const auto* fleet = metrics.find("fleet")) {
    print_metric_table("fleet metrics (all workers, merged)", *fleet);
  }
  const serve::json::Value sv =
      serve::json::parse(serve::send_line(host, port, "{\"op\":\"stats\"}"));
  std::printf("== workers ==\n");
  std::printf("  %-3s %-21s %-9s %8s %6s %6s %9s %8s %s\n", "id", "endpoint",
              "state", "inflight", "queue", "occ", "p99_ms", "reloads",
              "package");
  if (const auto* workers = sv.find("workers")) {
    for (const auto& row : workers->as_array()) {
      const std::string ep = row.string_or("host", "?") + ":" +
                             std::to_string(static_cast<long>(
                                 row.number_or("port", 0)));
      std::printf("  %-3.0f %-21s %-9s %8.0f %6.0f %6.3f %9.3f %8.0f %s\n",
                  row.number_or("index", 0), ep.c_str(),
                  row.string_or("state", "?").c_str(),
                  row.number_or("inflight", 0),
                  row.number_or("queue_depth", 0),
                  row.number_or("occupancy", 0),
                  row.number_or("p99_latency_ms", 0),
                  row.number_or("package_reloads", 0),
                  row.string_or("package_hash", "-").c_str());
    }
  }
  if (const auto* r = sv.find("router")) {
    const double hits = r->number_or("cache_hits", 0);
    const double misses = r->number_or("cache_misses", 0);
    const double lookups = hits + misses;
    std::printf(
        "shed: %.0f saturated, %.0f slo, %.0f unroutable | cache: %.1f%% "
        "hit (%.0f/%.0f), %.0f entries, %.0f invalidations | reroutes %.0f, "
        "restarts %.0f\n",
        r->number_or("shed_saturated", 0), r->number_or("shed_slo", 0),
        r->number_or("unroutable", 0),
        lookups == 0 ? 0.0 : 100.0 * hits / lookups, hits, lookups,
        r->number_or("cache_entries", 0),
        r->number_or("cache_invalidations", 0), r->number_or("reroutes", 0),
        r->number_or("worker_restarts", 0));
  }
  return 0;
}

/// `stats --port P`: queries a running server's "metrics" op and renders
/// its registries — single-service (service + process) or, when the reply
/// identifies a router, the fleet view.
int cmd_stats_server(const Args& a) {
  const std::string host = a.str("host", "127.0.0.1");
  const int port = static_cast<int>(a.num("port", 7788));
  const std::string reply =
      serve::send_line(host, port, "{\"op\":\"metrics\"}");
  if (a.flag("json")) {
    std::printf("%s\n", reply.c_str());
    return 0;
  }
  const serve::json::Value v = serve::json::parse(reply);
  if (!v.bool_or("ok", false)) {
    throw std::runtime_error("server refused metrics op: " + reply);
  }
  if (v.string_or("tier", "") == "router") return cmd_stats_router(a, v);
  if (const auto* svc = v.find("service")) {
    print_metric_table("service metrics", *svc);
  }
  if (const auto* proc = v.find("process")) {
    print_metric_table("process metrics", *proc);
  }
  return 0;
}

int cmd_stats(const Args& a) {
  if (a.flag("port")) return cmd_stats_server(a);
  const data::Schema schema = data::load_schema_file(a.str("schema"));
  const data::Dataset d = data::load_csv_file(a.str("data"), schema);
  print_stats("data", schema, d);
  if (a.flag("compare")) {
    const data::Dataset other = data::load_csv_file(a.str("compare"), schema);
    print_stats("compare", schema, other);
    std::printf("\n");
    const auto report = eval::fidelity_report(schema, d, other);
    std::ostringstream os;
    eval::print_report(os, report);
    std::fputs(os.str().c_str(), stdout);
  }
  return 0;
}

// ---------------------------------------------------------------- top

/// Live view of a training run directory: renders DIR/metrics.jsonl as an
/// aligned table (last --rows iterations), and with --follow keeps tailing
/// the file as the trainer appends (each record is flushed per iteration).
int cmd_top(const Args& a) {
  const std::string path = a.str("run") + "/metrics.jsonl";
  const bool follow = a.flag("follow");
  const std::size_t want = static_cast<std::size_t>(a.num("rows", 20));

  const auto print_header = [] {
    std::printf("%8s %9s %9s %9s %9s %9s %9s %9s %8s\n", "iter", "d_loss",
                "aux", "g_loss", "gp", "|gD|", "|gG|", "spread", "ms");
  };
  const auto print_row = [](const serve::json::Value& v) {
    std::printf("%8.0f %9.4f %9.4f %9.4f %9.4f %9.3f %9.3f %9.4f %8.1f\n",
                v.number_or("iter", 0), v.number_or("d_loss", 0),
                v.number_or("aux_loss", 0), v.number_or("g_loss", 0),
                v.number_or("gp_penalty", 0), v.number_or("d_grad_norm", 0),
                v.number_or("g_grad_norm", 0), v.number_or("feat_spread", 0),
                v.number_or("wall_ms", 0));
    std::fflush(stdout);
  };
  // Iteration records carry "iter"; event markers ({"event":...}) do not.
  const auto show_line = [&](const std::string& line) {
    try {
      const serve::json::Value v = serve::json::parse(line);
      if (v.find("iter")) print_row(v);
    } catch (const std::exception&) {
      // tolerate torn/foreign lines: a live writer may race us mid-record
    }
  };

  std::ifstream in(path);
  if (!in) throw std::runtime_error("top: cannot open " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  print_header();
  const std::size_t start = lines.size() > want ? lines.size() - want : 0;
  for (std::size_t i = start; i < lines.size(); ++i) show_line(lines[i]);
  if (!follow) return 0;

  // Tail: poll for appended lines (the trainer flushes one per iteration).
  // A line without a trailing newline yet is mid-write: rewind and retry.
  in.clear();
  for (;;) {
    const std::streampos pos = in.tellg();
    if (std::getline(in, line) && !in.eof()) {
      if (!line.empty()) show_line(line);
      continue;
    }
    in.clear();
    in.seekg(pos);
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
}

// ---------------------------------------------------------------- check

/// Runs one gradcheck battery item and prints a verdict line.
bool run_gradcheck_item(const char* name, const nn::GradCheckFn& fn,
                        std::vector<nn::Matrix> inputs,
                        const nn::GradCheckOptions& opts = {}) {
  const auto r = nn::gradcheck(fn, std::move(inputs), opts);
  std::printf("  %-28s %s\n", name, nn::to_string(r).c_str());
  return r.ok;
}

int cmd_check(const Args& a) {
  using nn::Matrix;
  using nn::Var;
  const uint64_t seed = static_cast<uint64_t>(a.num("seed", 17));
  const int iterations = static_cast<int>(a.num("iterations", 2));
  nn::Rng rng(seed);
  const auto randn = [&rng](int r, int c) {
    Matrix m(r, c);
    for (float& v : m.flat()) v = static_cast<float>(rng.normal(0.0, 0.5));
    return m;
  };

  std::printf("== compute backend ==\n");
  std::printf("  intra-op pool: %s, %d thread%s (%s)\n",
              nn::parallel_enabled() ? "enabled" : "compiled out (DG_PARALLEL=OFF)",
              nn::num_threads(), nn::num_threads() == 1 ? "" : "s",
              nn::num_threads_source());
  std::printf("  simd tier: %s (%s)\n",
              nn::simd::tier_name(nn::simd::active_tier()),
              nn::simd::simd_tier_source());

  bool ok = true;
  std::printf("== finite-difference gradcheck ==\n");

  // Dense tanh MLP chain: matmul + bias broadcast + nonlinearity + reduction.
  ok &= run_gradcheck_item(
      "mlp-tanh-chain",
      [](const std::vector<Var>& v) {
        Var h = nn::tanh_(nn::add_rowvec(nn::matmul(v[3], v[0]), v[1]));
        return nn::mean(nn::matmul(h, v[2]));
      },
      {randn(3, 4), randn(1, 4), randn(4, 1), randn(2, 3)});

  // Softmax rows (the categorical output path of every output block).
  ok &= run_gradcheck_item(
      "softmax-rows",
      [](const std::vector<Var>& v) {
        return nn::mean(nn::square(nn::softmax_rows(v[0])));
      },
      {randn(3, 5)});

  // One LSTM cell step with fixed parameters, differentiating x/h/c.
  {
    nn::Rng cell_rng(seed + 1);
    nn::LstmCell cell(3, 4, cell_rng);
    ok &= run_gradcheck_item(
        "lstm-cell-step",
        [&cell](const std::vector<Var>& v) {
          nn::LstmState s = cell.step(v[0], {v[1], v[2]});
          return nn::mean(nn::mul(s.h, s.c));
        },
        {randn(2, 3), randn(2, 4), randn(2, 4)});
  }

  // Second order: d/dx of a function of grad_x D(x) — the GP structure with
  // a smooth (tanh) critic so finite differences are well behaved.
  {
    const Matrix w1 = randn(3, 6), b1 = randn(1, 6), w2 = randn(6, 1);
    ok &= run_gradcheck_item(
        "second-order-gp-input",
        [&](const std::vector<Var>& v) {
          Var x = v[0];
          const auto critic = [&](const Var& in) {
            Var h = nn::tanh_(nn::add_rowvec(nn::matmul(in, nn::constant(w1)),
                                             nn::constant(b1)));
            return nn::matmul(h, nn::constant(w2));
          };
          Var out = nn::sum(critic(x));
          auto g = nn::autograd::grad(out, std::vector<Var>{x},
                                      /*create_graph=*/true);
          Var norms = nn::row_l2_norm(g[0]);
          return nn::mean(nn::square(nn::add_scalar(norms, -1.0f)));
        },
        {randn(4, 3)});
  }

  // The gradient the critic optimizer actually consumes: d(GP)/d(theta),
  // with the interpolation rng re-seeded so every probe uses the same t.
  {
    const Matrix real = randn(4, 3), fake = randn(4, 3);
    ok &= run_gradcheck_item(
        "gradient-penalty-params",
        [&](const std::vector<Var>& v) {
          const core::CriticFn critic = [&v](const Var& in) {
            Var h = nn::tanh_(nn::add_rowvec(nn::matmul(in, v[0]), v[1]));
            return nn::matmul(h, v[2]);
          };
          nn::Rng gp_rng(7);
          return core::gradient_penalty(critic, real, fake, gp_rng);
        },
        {randn(3, 6), randn(1, 6), randn(6, 1)});
  }

  std::printf("== instrumented training step (AnomalyGuard) ==\n");
  auto d = synth::make_gcut({.n = 64, .t_max = 25, .seed = seed});
  for (auto& o : d.data) {
    if (o.length() > 25) o.features.resize(25);
  }
  d.schema.max_timesteps = 25;
  core::DoppelGangerConfig cfg;
  cfg.attr_hidden = 16;
  cfg.attr_layers = 1;
  cfg.minmax_hidden = 16;
  cfg.minmax_layers = 1;
  cfg.lstm_units = 16;
  cfg.head_hidden = 16;
  cfg.sample_len = 5;
  cfg.disc_hidden = 32;
  cfg.disc_layers = 2;
  cfg.batch = 16;
  cfg.iterations = iterations;
  cfg.seed = seed;
  std::printf("  dataset gcut n=%zu t=%d; %d generator iterations\n",
              d.data.size(), d.schema.max_timesteps, iterations);

  nn::AnomalyOptions guard_opts;
  guard_opts.forbid_stale_grads = true;  // the training loop always zero_grads
  nn::AnomalyGuard guard(guard_opts);
  try {
    core::DoppelGanger model(d.schema, cfg);
    model.fit(d.data);
  } catch (const nn::AnomalyError& e) {
    std::printf("  training step: FAIL — %s\n", e.what());
    ok = false;
  }
  const auto& st = guard.stats();
  std::printf("  forward values checked   %zu\n", st.forward_values_checked);
  std::printf("  backward grads checked   %zu\n", st.backward_grads_checked);
  std::printf("  backward runs            %zu\n", st.backward_runs);
  std::printf("  tape audits              %zu\n", st.tape_audits);
  const std::size_t leaked = guard.leaked_nodes();
  std::printf("  leaked nodes after teardown: %zu\n", leaked);
  if (leaked != 0) ok = false;
  if (st.backward_runs == 0 || st.forward_values_checked == 0) ok = false;

  // Everything the run pushed into the process registry (anomaly counters
  // from nn/check, training gauges from the fit above) plus the leak count,
  // so a scripted `dgcli check` has one machine-readable-ish summary block.
  obs::Registry::global().counter("nn.check.leaked_nodes").add(leaked);
  std::printf("== metrics registry (process) ==\n");
  const obs::RegistrySnapshot snap = obs::Registry::global().snapshot();
  std::size_t width = 0;
  for (const auto& [name, v] : snap.counters) width = std::max(width, name.size());
  for (const auto& [name, v] : snap.gauges) width = std::max(width, name.size());
  for (const auto& [name, v] : snap.counters) {
    std::printf("  %-*s  %llu\n", static_cast<int>(width), name.c_str(),
                static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    std::printf("  %-*s  %.6g\n", static_cast<int>(width), name.c_str(), v);
  }

  std::printf("check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

// ---------------------------------------------------------------- lint

/// Registry for lint runs: builtin, with --assume-first-order op1,op2
/// downgrades applied (proves the critic-path audit catches such ops).
analysis::OpRegistry lint_registry(const Args& a) {
  analysis::OpRegistry reg = analysis::OpRegistry::builtin();
  if (a.flag("assume-first-order")) {
    for (const std::string& op : split_clauses(a.str("assume-first-order"))) {
      const analysis::OpInfo* info = reg.find(op);
      if (info == nullptr) {
        throw std::runtime_error("lint: unknown op '" + op +
                                 "' in --assume-first-order");
      }
      analysis::OpInfo downgraded = *info;
      downgraded.diff = analysis::DiffClass::kFirstOrderOnly;
      reg.add(std::move(downgraded));
    }
  }
  return reg;
}

/// Minimal JSON string escape for census paths (quotes, backslashes,
/// control bytes).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Common tail of every lint mode: render diagnostics (human or JSON) and
/// map them to the exit code (0 clean, 1 errors). `tape`, when present,
/// adds the tape-plan census (a `tape` block in JSON output); `train` adds
/// the training-step adjoint audit's reduction-order census likewise.
int lint_report(std::span<const analysis::Diagnostic> diags, bool json,
                const analysis::TapeSummary* tape = nullptr,
                const analysis::TrainingStepAnalysis* train = nullptr) {
  const bool bad = analysis::has_errors(diags);
  if (json) {
    std::string tape_block;
    if (tape != nullptr) {
      tape_block = "\"tape\":{\"instructions\":" +
                   std::to_string(tape->instructions) +
                   ",\"fusion_groups\":" + std::to_string(tape->fusion_groups) +
                   ",\"arena_peak_bytes\":" +
                   std::to_string(tape->arena_peak_bytes) +
                   ",\"verified\":" + (tape->verified ? "true" : "false") +
                   "},";
    }
    std::string train_block;
    if (train != nullptr) {
      train_block = "\"train\":{\"graph_nodes\":" +
                    std::to_string(train->graph_nodes) +
                    ",\"grad_slot_writes\":" +
                    std::to_string(train->grad_slot_writes) +
                    ",\"accumulation_adds\":" +
                    std::to_string(train->accumulation_adds) + ",\"census\":[";
      bool first = true;
      for (const analysis::ReductionSite& site : train->census) {
        if (!first) train_block += ',';
        first = false;
        train_block += "{\"op\":\"" + json_escape(site.op) +
                       "\",\"class\":\"" + analysis::to_string(site.det) +
                       "\",\"count\":" + std::to_string(site.count) +
                       ",\"where\":\"" + json_escape(site.where) + "\"}";
      }
      train_block += "]},";
    }
    std::printf("{\"ok\":%s,%s%s\"diagnostics\":%s}\n", bad ? "false" : "true",
                tape_block.c_str(), train_block.c_str(),
                analysis::to_json(diags).c_str());
    return bad ? 1 : 0;
  }
  if (tape != nullptr) {
    std::printf("tape: %d instructions, %d fusion groups, arena peak %lld "
                "bytes/lane, %s\n",
                tape->instructions, tape->fusion_groups,
                tape->arena_peak_bytes,
                tape->verified ? "verified" : "REJECTED");
  }
  if (train != nullptr) {
    std::printf("training step: %d graph nodes, %d gradient-slot writes, "
                "%d in-graph gradient accumulations\n",
                train->graph_nodes, train->grad_slot_writes,
                train->accumulation_adds);
    std::printf("reduction-order census (sites a data-parallel all-reduce "
                "must pin):\n");
    for (const analysis::ReductionSite& site : train->census) {
      std::printf("  %-16s %-18s x%-6d %s\n", site.op.c_str(),
                  analysis::to_string(site.det), site.count,
                  site.where.c_str());
    }
  }
  if (!diags.empty()) {
    std::ostringstream os;
    analysis::print_human(os, diags);
    std::fputs(os.str().c_str(), stdout);
  }
  std::printf("lint: %s (%zu finding%s)\n", bad ? "FAIL" : "PASS",
              diags.size(), diags.size() == 1 ? "" : "s");
  return bad ? 1 : 0;
}

/// Lowers + verifies the generation tape for --tape, optionally corrupting
/// it first (--tape-mutate CLASS, the lint-level mutation test). Appends
/// the verifier's findings to `diags` and returns the census.
analysis::TapeSummary run_tape_lint(const data::Schema& schema,
                                    const core::DoppelGangerConfig& cfg,
                                    const Args& a,
                                    std::vector<analysis::Diagnostic>& diags) {
  analysis::TapeReport rep = analysis::build_generation_tape(schema, cfg);
  if (a.flag("tape-mutate")) {
    if (!analysis::seed_tape_defect(rep, a.str("tape-mutate"))) {
      throw std::runtime_error("lint: unknown --tape-mutate class '" +
                               a.str("tape-mutate") + "'");
    }
  }
  for (const analysis::Diagnostic& d : rep.diagnostics) diags.push_back(d);
  return analysis::summarize_tape(rep);
}

/// Runs the training-step adjoint audit for --train, optionally seeding a
/// defect class first (--train-mutate CLASS, the adjoint-level mutation
/// test). Appends the audit's findings to `diags` and returns the analysis
/// (op multisets + reduction-order census).
analysis::TrainingStepAnalysis run_train_lint(
    const data::Schema& schema, const core::DoppelGangerConfig& cfg,
    const analysis::OpRegistry& base, const Args& a,
    std::vector<analysis::Diagnostic>& diags) {
  analysis::OpRegistry reg = base;
  if (a.flag("train-mutate")) {
    if (!analysis::seed_adjoint_defect(reg, a.str("train-mutate"))) {
      throw std::runtime_error("lint: unknown --train-mutate class '" +
                               a.str("train-mutate") + "'");
    }
  }
  analysis::TrainStepOptions opts;
  opts.registry = &reg;
  analysis::TrainingStepAnalysis ts =
      analysis::analyze_training_step(schema, cfg, opts);
  for (const analysis::Diagnostic& d : ts.diagnostics) diags.push_back(d);
  return ts;
}

int cmd_lint(const Args& a) {
  const bool json = a.flag("json");
  const bool want_tape = a.flag("tape") || a.flag("tape-mutate");
  const bool want_train = a.flag("train") || a.flag("train-mutate");
  const analysis::OpRegistry reg = lint_registry(a);
  if (a.flag("package")) {
    const core::PackagePreflight pf =
        core::preflight_package_file(a.str("package"), reg);
    if (!json && pf.header_ok) {
      std::printf("package %s: %d attributes, %d features, "
                  "%zu weight matrices\n",
                  a.str("package").c_str(),
                  pf.schema.num_attributes(), pf.schema.num_features(),
                  pf.weight_matrices.size());
    }
    std::vector<analysis::Diagnostic> diags = pf.diagnostics;
    analysis::TapeSummary tape = pf.tape;
    // The preflight already lowered + verified the tape; re-run only for
    // the mutation negative control, which needs the full report.
    if (want_tape && pf.header_ok && a.flag("tape-mutate")) {
      tape = run_tape_lint(pf.schema, pf.config, a, diags);
    }
    std::optional<analysis::TrainingStepAnalysis> train;
    if (want_train && pf.header_ok) {
      train = run_train_lint(pf.schema, pf.config, reg, a, diags);
    }
    return lint_report(diags, json, want_tape ? &tape : nullptr,
                       train ? &*train : nullptr);
  }
  const data::Schema schema = data::load_schema_file(a.str("schema"));
  core::DoppelGangerConfig cfg;
  if (a.flag("config")) {
    std::ifstream is(a.str("config"));
    if (!is) throw std::runtime_error("lint: cannot open " + a.str("config"));
    cfg = core::load_config(is);
  } else {
    // No config given: lint the defaults dgcli train would use (sample_len
    // derived from the schema, as in config_from).
    cfg.sample_len = std::max(1, schema.max_timesteps / 28);
  }
  const analysis::ModelAnalysis ma =
      core::preflight_config(schema, cfg, reg);
  if (!json) {
    std::printf("model: %zu parameter matrices, %d symbolic graph nodes, "
                "generation step width %d\n",
                ma.parameters.size(), ma.graph_nodes, ma.generation_step_cols);
  }
  std::vector<analysis::Diagnostic> diags = ma.diagnostics;
  std::optional<analysis::TapeSummary> tape;
  if (want_tape) tape = run_tape_lint(schema, cfg, a, diags);
  std::optional<analysis::TrainingStepAnalysis> train;
  if (want_train) train = run_train_lint(schema, cfg, reg, a, diags);
  return lint_report(diags, json, tape ? &*tape : nullptr,
                     train ? &*train : nullptr);
}

int usage() {
  std::fprintf(stderr,
               "usage: dgcli <make-synth|train|generate|serve|route|request|"
               "trace|stats|top|check|lint> [options]\n"
               "see the header of tools/dgcli.cpp for the option list\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse(argc, argv);
    if (a.command == "make-synth") return cmd_make_synth(a);
    if (a.command == "train") return cmd_train(a);
    if (a.command == "generate") return cmd_generate(a);
    if (a.command == "serve") return cmd_serve(a);
    if (a.command == "route") return cmd_route(a);
    if (a.command == "request") return cmd_request(a);
    if (a.command == "trace") return cmd_trace(a);
    if (a.command == "stats") return cmd_stats(a);
    if (a.command == "top") return cmd_top(a);
    if (a.command == "check") return cmd_check(a);
    if (a.command == "lint") return cmd_lint(a);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dgcli: %s\n", e.what());
    return 1;
  }
}
