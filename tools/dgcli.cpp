// dgcli — command-line front end for the DoppelGANger library.
//
//   dgcli make-synth --dataset wwt|mba|gcut --n N --schema S.schema --out D.csv
//   dgcli train      --schema S.schema --data D.csv --out M.dgpkg
//                    [--iterations N] [--sample-len S] [--batch B] [--seed X]
//                    [--no-minmax] [--no-aux] [--lstm-units U] [--d-steps K]
//   dgcli generate   --model M.dgpkg --n N --out synth.csv
//   dgcli stats      --schema S.schema --data D.csv [--compare other.csv]
//
// The .dgpkg package bundles schema + architecture + trained parameters, so
// `generate` needs nothing else — the paper's Fig 2 release flow.
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <string>

#include "core/doppelganger.h"
#include "core/package.h"
#include "data/io.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "synth/synth.h"

namespace {

using namespace dg;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const { return options.count(name) > 0; }
  std::string str(const std::string& name, const std::string& fallback = "") const {
    auto it = options.find(name);
    if (it == options.end()) {
      if (fallback.empty()) {
        throw std::runtime_error("missing required option --" + name);
      }
      return fallback;
    }
    return it->second;
  }
  long num(const std::string& name, long fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback : std::stol(it->second);
  }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc < 2) throw std::runtime_error("no command given");
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) throw std::runtime_error("bad option " + key);
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      a.options[key] = argv[++i];
    } else {
      a.options[key] = "1";  // boolean flag
    }
  }
  return a;
}

int cmd_make_synth(const Args& a) {
  const std::string kind = a.str("dataset");
  const int n = static_cast<int>(a.num("n", 500));
  const uint64_t seed = static_cast<uint64_t>(a.num("seed", 1));
  synth::SynthData d;
  if (kind == "wwt") {
    d = synth::make_wwt({.n = n, .seed = seed});
  } else if (kind == "mba") {
    d = synth::make_mba({.n = n, .seed = seed});
  } else if (kind == "gcut") {
    d = synth::make_gcut({.n = n, .seed = seed});
  } else {
    throw std::runtime_error("unknown --dataset (wwt|mba|gcut)");
  }
  data::save_schema_file(a.str("schema"), d.schema);
  data::save_csv_file(a.str("out"), d.schema, d.data);
  std::printf("wrote %zu objects to %s (schema: %s)\n", d.data.size(),
              a.str("out").c_str(), a.str("schema").c_str());
  return 0;
}

core::DoppelGangerConfig config_from(const Args& a, const data::Schema& schema) {
  core::DoppelGangerConfig cfg;
  cfg.sample_len = static_cast<int>(
      a.num("sample-len", std::max(1, schema.max_timesteps / 28)));
  cfg.lstm_units = static_cast<int>(a.num("lstm-units", 64));
  cfg.head_hidden = cfg.lstm_units;
  cfg.disc_hidden = static_cast<int>(a.num("disc-hidden", 128));
  cfg.disc_layers = 3;
  cfg.batch = static_cast<int>(a.num("batch", 32));
  cfg.iterations = static_cast<int>(a.num("iterations", 800));
  cfg.d_steps = static_cast<int>(a.num("d-steps", 2));
  cfg.seed = static_cast<uint64_t>(a.num("seed", 0));
  cfg.use_minmax_generator = !a.flag("no-minmax");
  cfg.use_aux_discriminator = !a.flag("no-aux");
  return cfg;
}

int cmd_train(const Args& a) {
  const data::Schema schema = data::load_schema_file(a.str("schema"));
  const data::Dataset train = data::load_csv_file(a.str("data"), schema);
  const auto cfg = config_from(a, schema);
  core::DoppelGanger model(schema, cfg);
  std::printf("training on %zu objects (%d iterations, S=%d)...\n",
              train.size(), cfg.iterations, cfg.sample_len);
  const auto stats = model.fit(train);
  std::printf("final losses: critic %.3f, generator %.3f\n",
              stats.d_loss.back(), stats.g_loss.back());
  core::save_package_file(a.str("out"), model);
  std::printf("wrote model package %s\n", a.str("out").c_str());
  return 0;
}

int cmd_generate(const Args& a) {
  auto model = core::load_package_file(a.str("model"));
  const int n = static_cast<int>(a.num("n", 500));
  const data::Dataset out = model->generate(n);
  data::save_csv_file(a.str("out"), model->schema(), out);
  std::printf("generated %d objects -> %s\n", n, a.str("out").c_str());
  return 0;
}

void print_stats(const char* tag, const data::Schema& schema,
                 const data::Dataset& d) {
  std::printf("[%s] %zu objects\n", tag, d.size());
  double mean_len = 0;
  for (const auto& o : d) mean_len += o.length();
  std::printf("[%s] mean length %.1f / max %d\n", tag,
              mean_len / static_cast<double>(d.size()), schema.max_timesteps);
  for (size_t j = 0; j < schema.attributes.size(); ++j) {
    const auto& spec = schema.attributes[j];
    if (spec.type != data::FieldType::Categorical) continue;
    const auto m = eval::attribute_marginal(d, schema, static_cast<int>(j));
    std::printf("[%s] %s:", tag, spec.name.c_str());
    for (int c = 0; c < spec.n_categories; ++c) {
      std::printf(" %s=%.3f", spec.labels[static_cast<size_t>(c)].c_str(),
                  m[static_cast<size_t>(c)]);
    }
    std::printf("\n");
  }
}

int cmd_stats(const Args& a) {
  const data::Schema schema = data::load_schema_file(a.str("schema"));
  const data::Dataset d = data::load_csv_file(a.str("data"), schema);
  print_stats("data", schema, d);
  if (a.flag("compare")) {
    const data::Dataset other = data::load_csv_file(a.str("compare"), schema);
    print_stats("compare", schema, other);
    std::printf("\n");
    const auto report = eval::fidelity_report(schema, d, other);
    std::ostringstream os;
    eval::print_report(os, report);
    std::fputs(os.str().c_str(), stdout);
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: dgcli <make-synth|train|generate|stats> [options]\n"
               "see the header of tools/dgcli.cpp for the option list\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse(argc, argv);
    if (a.command == "make-synth") return cmd_make_synth(a);
    if (a.command == "train") return cmd_train(a);
    if (a.command == "generate") return cmd_generate(a);
    if (a.command == "stats") return cmd_stats(a);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dgcli: %s\n", e.what());
    return 1;
  }
}
